package scenario

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"kaas/internal/accel"
	"kaas/internal/client"
	"kaas/internal/core"
	"kaas/internal/cplane"
	"kaas/internal/wire"
)

// Outcome classifies how one invocation ended. Everything the platform
// can legitimately do to a request maps to a named outcome; anything
// else is OutcomeUntyped, which the TypedFailures invariant treats as a
// lost-accounting bug.
type Outcome string

// Outcomes.
const (
	// OutcomeOK: the invocation succeeded.
	OutcomeOK Outcome = "ok"
	// OutcomeShed: admission control rejected it with the retryable
	// OVERLOADED contract.
	OutcomeShed Outcome = "shed"
	// OutcomeDraining: the server was draining or already shut down.
	OutcomeDraining Outcome = "draining"
	// OutcomeUnavailable: every candidate device was breaker-excluded,
	// failover ran out of healthy capacity (or the wire reported
	// UNAVAILABLE).
	OutcomeUnavailable Outcome = "unavailable"
	// OutcomeDeadline: the caller's deadline expired first.
	OutcomeDeadline Outcome = "deadline"
	// OutcomeUntyped: an error outside the platform's typed contract.
	OutcomeUntyped Outcome = "untyped"
)

// Classify maps an invocation error to its outcome: the in-process typed
// errors, their wire-protocol RemoteError codes, and context expiry. An
// error that matches none of them is OutcomeUntyped — the failure class
// the harness exists to catch.
func Classify(err error) Outcome {
	if err == nil {
		return OutcomeOK
	}
	var re *client.RemoteError
	if errors.As(err, &re) {
		switch re.Code {
		case wire.CodeOverloaded:
			return OutcomeShed
		case wire.CodeUnavailable:
			return OutcomeUnavailable
		case wire.CodeDeadlineExceeded:
			return OutcomeDeadline
		}
		return OutcomeUntyped
	}
	switch {
	case errors.Is(err, core.ErrOverloaded):
		return OutcomeShed
	case errors.Is(err, core.ErrDraining), errors.Is(err, core.ErrServerClosed):
		return OutcomeDraining
	case errors.Is(err, core.ErrUnavailable),
		errors.Is(err, accel.ErrDeviceFailed),
		errors.Is(err, accel.ErrContextReleased):
		// Device failures that exhaust the failover loop surface wrapped —
		// the wire maps them to UNAVAILABLE, so the in-process path must
		// classify them the same way.
		return OutcomeUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return OutcomeDeadline
	}
	return OutcomeUntyped
}

// Record is one classified invocation of a run.
type Record struct {
	// Index is the trace event index.
	Index int
	// Outcome is the classification of the invocation's result.
	Outcome Outcome
	// Latency is the wall-clock invocation latency.
	Latency time.Duration
	// Err holds the error text for non-OK outcomes (diagnostics only).
	Err string
	// Tenant is the normalized tenant of the trace event, so per-tenant
	// invariants can split outcomes by who offered the work.
	Tenant string
}

// RunData is everything the invariant checker may inspect about a
// finished run.
type RunData struct {
	// Seed is the scenario seed.
	Seed int64
	// Issued is how many trace events the replay dispatched.
	Issued int
	// Records holds one entry per issued invocation.
	Records []Record
	// Counts aggregates Records by outcome.
	Counts map[Outcome]int
	// Stats are the final server snapshots (one per platform; clusters
	// have several).
	Stats []core.Stats
	// ScriptedTransitions is the chaos transition count the spec
	// scripts; ObservedTransitions is what the injectors actually drove.
	ScriptedTransitions, ObservedTransitions int
	// BreakerTransitions sums the servers' device-breaker transitions.
	BreakerTransitions uint64
	// Drained reports whether a scripted drain/host-down ran; DrainErr
	// is its result.
	Drained  bool
	DrainErr error
	// Failover is the cluster router's dispatch-counter snapshot (nodes
	// transport only, nil elsewhere).
	Failover *cplane.RouterStats
}

// p99 returns the 99th-percentile latency of the OK records (0 if none).
func (d *RunData) p99() time.Duration {
	var ok []time.Duration
	for _, r := range d.Records {
		if r.Outcome == OutcomeOK {
			ok = append(ok, r.Latency)
		}
	}
	if len(ok) == 0 {
		return 0
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
	return ok[rankIndex(len(ok), 0.99)]
}

// rankIndex is the nearest-rank percentile index (ceil(p*n)-1), which
// unlike truncation never under-reports the tail on small samples.
func rankIndex(n int, p float64) int {
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// firstUntyped returns the first untyped-error record, if any.
func (d *RunData) firstUntyped() (Record, bool) {
	for _, r := range d.Records {
		if r.Outcome == OutcomeUntyped {
			return r, true
		}
	}
	return Record{}, false
}

// Invariant is a pass/fail property of a finished run. Check returns nil
// when the property holds and a diagnostic error when it does not.
type Invariant interface {
	Name() string
	Check(d *RunData) error
}

// Accounted asserts that no invocation was lost: every issued trace
// event produced exactly one classified record. A request that vanished
// (no response, no typed error, no record) is the worst control-plane
// failure mode, so every scenario should carry this invariant.
type Accounted struct{}

// Name implements Invariant.
func (Accounted) Name() string { return "accounted" }

// Check implements Invariant.
func (Accounted) Check(d *RunData) error {
	if len(d.Records) != d.Issued {
		return fmt.Errorf("issued %d invocations but recorded %d outcomes", d.Issued, len(d.Records))
	}
	var total int
	for _, n := range d.Counts {
		total += n
	}
	if total != d.Issued {
		return fmt.Errorf("outcome counts sum to %d, want %d", total, d.Issued)
	}
	return nil
}

// TypedFailures asserts that every failed invocation failed inside the
// platform's typed error contract — OVERLOADED, draining, unavailable,
// or a deadline — never with an unclassified error. Chaos that surfaces
// raw transport or internal errors to callers fails here.
type TypedFailures struct{}

// Name implements Invariant.
func (TypedFailures) Name() string { return "typed-failures" }

// Check implements Invariant.
func (TypedFailures) Check(d *RunData) error {
	if n := d.Counts[OutcomeUntyped]; n > 0 {
		r, _ := d.firstUntyped()
		return fmt.Errorf("%d invocations failed outside the typed error contract (first: event %d: %s)",
			n, r.Index, r.Err)
	}
	return nil
}

// OutcomesIn asserts that every record's outcome is in the allowed set —
// e.g. a retry scenario allows only {ok}: every transient failure must
// have been retried into success; a drain scenario allows {ok, draining}.
type OutcomesIn struct{ Allowed []Outcome }

// Name implements Invariant.
func (o OutcomesIn) Name() string { return fmt.Sprintf("outcomes-in%v", o.Allowed) }

// Check implements Invariant.
func (o OutcomesIn) Check(d *RunData) error {
	allowed := make(map[Outcome]bool, len(o.Allowed))
	for _, a := range o.Allowed {
		allowed[a] = true
	}
	for out, n := range d.Counts {
		if n > 0 && !allowed[out] {
			return fmt.Errorf("%d invocations ended %q, outside the allowed set %v", n, out, o.Allowed)
		}
	}
	return nil
}

// MinSuccess asserts that at least Fraction of issued invocations
// succeeded. Use 1.0 for "chaos must be invisible to clients" scenarios
// (failover, retries) and lower bounds where shedding is the point.
type MinSuccess struct{ Fraction float64 }

// Name implements Invariant.
func (m MinSuccess) Name() string { return fmt.Sprintf("min-success(%.0f%%)", 100*m.Fraction) }

// Check implements Invariant.
func (m MinSuccess) Check(d *RunData) error {
	if d.Issued == 0 {
		return fmt.Errorf("no invocations issued")
	}
	got := float64(d.Counts[OutcomeOK]) / float64(d.Issued)
	if got < m.Fraction {
		return fmt.Errorf("success rate %.1f%% (%d/%d) below the %.1f%% floor",
			100*got, d.Counts[OutcomeOK], d.Issued, 100*m.Fraction)
	}
	return nil
}

// MinSuccessExclShed asserts that at least Fraction of the invocations
// admission control did not shed ended in success. Failover scenarios
// use it: shedding displaced load with the typed OVERLOADED contract is
// legitimate back-pressure, but work the cluster accepted must land —
// losing it to a dead node is exactly the failure the control plane
// exists to mask.
type MinSuccessExclShed struct{ Fraction float64 }

// Name implements Invariant.
func (m MinSuccessExclShed) Name() string {
	return fmt.Sprintf("min-success-excl-shed(%.0f%%)", 100*m.Fraction)
}

// Check implements Invariant.
func (m MinSuccessExclShed) Check(d *RunData) error {
	admitted := d.Issued - d.Counts[OutcomeShed]
	if admitted <= 0 {
		return fmt.Errorf("no invocations admitted (%d issued, all shed)", d.Issued)
	}
	got := float64(d.Counts[OutcomeOK]) / float64(admitted)
	if got < m.Fraction {
		return fmt.Errorf("success rate %.1f%% (%d ok of %d admitted) below the %.1f%% floor",
			100*got, d.Counts[OutcomeOK], admitted, 100*m.Fraction)
	}
	return nil
}

// FailedOver asserts the cluster router actually moved work between
// nodes at least Min times. A node-kill scenario where nothing failed
// over proves nothing — either the kill missed the load or the router
// never re-dispatched — so the headline claim ("survives node death
// mid-load") is only earned when this holds alongside the success floor.
type FailedOver struct{ Min uint64 }

// Name implements Invariant.
func (f FailedOver) Name() string { return fmt.Sprintf("failed-over(>=%d)", f.Min) }

// Check implements Invariant.
func (f FailedOver) Check(d *RunData) error {
	if d.Failover == nil {
		return fmt.Errorf("no router failover stats recorded (invariant needs the nodes transport)")
	}
	if d.Failover.FailedOver < f.Min {
		return fmt.Errorf("router failed over %d invocations, want at least %d (redispatches %d, budget exhausted %d)",
			d.Failover.FailedOver, f.Min, d.Failover.Redispatches, d.Failover.BudgetExhausted)
	}
	return nil
}

// BoundedP99 asserts that the admitted (successful) invocations kept a
// bounded 99th-percentile wall latency through the chaos. The bound is
// deliberately generous — it catches pathological stalls (lost wakeups,
// requests parked on a dead connection until a distant timeout), not
// ordinary jitter, so verdicts stay deterministic across machines.
type BoundedP99 struct{ Max time.Duration }

// Name implements Invariant.
func (b BoundedP99) Name() string { return fmt.Sprintf("p99-under(%v)", b.Max) }

// Check implements Invariant.
func (b BoundedP99) Check(d *RunData) error {
	if d.Counts[OutcomeOK] == 0 {
		return fmt.Errorf("no successful invocations to measure")
	}
	if p := d.p99(); p > b.Max {
		return fmt.Errorf("p99 of admitted invocations %v exceeds bound %v", p, b.Max)
	}
	return nil
}

// ShedBounded asserts that admission control shed at most MaxFraction of
// the offered load — overload protection should clip the excess, not
// reject everything.
type ShedBounded struct{ MaxFraction float64 }

// Name implements Invariant.
func (s ShedBounded) Name() string { return fmt.Sprintf("shed-under(%.0f%%)", 100*s.MaxFraction) }

// Check implements Invariant.
func (s ShedBounded) Check(d *RunData) error {
	if d.Issued == 0 {
		return fmt.Errorf("no invocations issued")
	}
	got := float64(d.Counts[OutcomeShed]) / float64(d.Issued)
	if got > s.MaxFraction {
		return fmt.Errorf("shed rate %.1f%% (%d/%d) above the %.1f%% ceiling",
			100*got, d.Counts[OutcomeShed], d.Issued, 100*s.MaxFraction)
	}
	return nil
}

// BreakerRecovered asserts the circuit-breaker lifecycle the scenario's
// device flaps model: breakers actually tripped (at least MinTransitions
// state changes were observed) and every breaker ended the run closed —
// the devices recovered and placement sees them again. A breaker stuck
// open after its device healed is exactly the regression this catches.
type BreakerRecovered struct{ MinTransitions uint64 }

// Name implements Invariant.
func (b BreakerRecovered) Name() string { return "breaker-recovered" }

// Check implements Invariant.
func (b BreakerRecovered) Check(d *RunData) error {
	if d.BreakerTransitions < b.MinTransitions {
		return fmt.Errorf("only %d breaker transitions observed, want at least %d (did the flaps reach the breaker?)",
			d.BreakerTransitions, b.MinTransitions)
	}
	for _, st := range d.Stats {
		for id, dev := range st.PerDevice {
			if dev.BreakerState != "" && dev.BreakerState != "closed" {
				return fmt.Errorf("device %s breaker ended %q, want closed", id, dev.BreakerState)
			}
		}
	}
	return nil
}

// DrainClean asserts the graceful-drain contract: the scripted drain ran,
// finished inside its timeout with no error (every in-flight invocation
// completed rather than being dropped), and the server ended with zero
// in-flight work.
type DrainClean struct{}

// Name implements Invariant.
func (DrainClean) Name() string { return "drain-clean" }

// Check implements Invariant.
func (DrainClean) Check(d *RunData) error {
	if !d.Drained {
		return fmt.Errorf("the scripted drain never ran")
	}
	if d.DrainErr != nil {
		return fmt.Errorf("drain did not complete cleanly: %v", d.DrainErr)
	}
	for _, st := range d.Stats {
		if st.InFlight != 0 {
			return fmt.Errorf("%d invocations still in flight after drain", st.InFlight)
		}
	}
	return nil
}

// TransitionsComplete asserts the chaos script ran to completion: the
// injectors drove exactly the scripted number of fault transitions. A
// schedule that silently lost cycles (leaked goroutine, early exit)
// weakens the scenario without failing it — this makes that loud.
type TransitionsComplete struct{}

// Name implements Invariant.
func (TransitionsComplete) Name() string { return "transitions-complete" }

// Check implements Invariant.
func (TransitionsComplete) Check(d *RunData) error {
	if d.ObservedTransitions != d.ScriptedTransitions {
		return fmt.Errorf("chaos drove %d transitions, scripted %d", d.ObservedTransitions, d.ScriptedTransitions)
	}
	return nil
}

// ScaledToZero asserts the keepalive reaper actually released idle
// device slots during the run — the scale-to-zero half of the cold-start
// story. A scenario that enables KeepAliveIdle but whose trace never
// leaves a runner idle long enough exercises nothing; this makes that
// loud. The bound is a floor, not an exact count: how many reaps land
// depends on where sweeps fall inside idle windows, which tracks timer
// granularity, so only "it happened at least this often" is stable
// across machines and seeds.
type ScaledToZero struct{ MinReaps uint64 }

// Name implements Invariant.
func (s ScaledToZero) Name() string { return fmt.Sprintf("scaled-to-zero(>=%d)", s.MinReaps) }

// Check implements Invariant.
func (s ScaledToZero) Check(d *RunData) error {
	var reaps uint64
	for _, st := range d.Stats {
		reaps += st.Reaps
	}
	if reaps < s.MinReaps {
		return fmt.Errorf("idle reaper released %d runners, want at least %d", reaps, s.MinReaps)
	}
	return nil
}

// CacheWarmed asserts the compiled-artifact cache converted repeat cold
// starts into cached-cold boots: at least MinHits cold starts after the
// first found their compiled kernel already cached (locally or seeded
// from a peer host) and skipped the modeled JIT compile. Like
// ScaledToZero this is a floor — the exact hit count depends on how
// many scale-to-zero cycles the trace produces.
type CacheWarmed struct{ MinHits uint64 }

// Name implements Invariant.
func (c CacheWarmed) Name() string { return fmt.Sprintf("cache-warmed(>=%d)", c.MinHits) }

// Check implements Invariant.
func (c CacheWarmed) Check(d *RunData) error {
	var hits, misses uint64
	for _, st := range d.Stats {
		for _, ks := range st.PerKernel {
			hits += ks.CacheHits
			misses += ks.CacheMisses
		}
	}
	if hits < c.MinHits {
		return fmt.Errorf("artifact cache hit %d cold starts (missed %d), want at least %d hits", hits, misses, c.MinHits)
	}
	return nil
}

// OOBServed asserts the out-of-band data plane actually carried at
// least Min invocations: the client negotiated arena leases and moved
// payloads by handle instead of copying them through the frame. A
// scenario that enables OOB but whose traffic never leaves the in-band
// path exercises nothing — this makes that loud.
type OOBServed struct{ Min uint64 }

// Name implements Invariant.
func (o OOBServed) Name() string { return fmt.Sprintf("oob-served(>=%d)", o.Min) }

// Check implements Invariant.
func (o OOBServed) Check(d *RunData) error {
	var served uint64
	for _, st := range d.Stats {
		served += st.DataPlane.OOBInvocations
	}
	if served < o.Min {
		return fmt.Errorf("out-of-band path served %d invocations, want at least %d (did lease negotiation run?)", served, o.Min)
	}
	return nil
}

// LeasesRevoked asserts the lease-revocation path actually fired at
// least Min times — the chaos (breaker-open, drain) reclaimed leased
// arena windows mid-load, and the run's other invariants then prove the
// clients absorbed it: revoked leases must degrade to in-band transfer
// transparently, never surface as untyped copy-fallback errors.
type LeasesRevoked struct{ Min uint64 }

// Name implements Invariant.
func (l LeasesRevoked) Name() string { return fmt.Sprintf("leases-revoked(>=%d)", l.Min) }

// Check implements Invariant.
func (l LeasesRevoked) Check(d *RunData) error {
	var revoked uint64
	for _, st := range d.Stats {
		revoked += st.DataPlane.LeaseRevocations
	}
	if revoked < l.Min {
		return fmt.Errorf("only %d leases were revoked, want at least %d (did the chaos reach the arena?)", revoked, l.Min)
	}
	return nil
}

// tenantRecords splits d.Records by the named (normalized) tenant.
func (d *RunData) tenantRecords(tenant string) []Record {
	tenant = core.NormalizeTenant(tenant)
	var out []Record
	for _, r := range d.Records {
		if core.NormalizeTenant(r.Tenant) == tenant {
			out = append(out, r)
		}
	}
	return out
}

// TenantMinSuccess asserts that at least Fraction of one tenant's
// invocations succeeded. Noisy-neighbor scenarios use it on the victim
// tenants: fair queueing must preserve their share of capacity while an
// aggressor floods the server.
type TenantMinSuccess struct {
	Tenant   string
	Fraction float64
}

// Name implements Invariant.
func (t TenantMinSuccess) Name() string {
	return fmt.Sprintf("tenant-min-success(%s,%.0f%%)", t.Tenant, 100*t.Fraction)
}

// Check implements Invariant.
func (t TenantMinSuccess) Check(d *RunData) error {
	recs := d.tenantRecords(t.Tenant)
	if len(recs) == 0 {
		return fmt.Errorf("tenant %q issued no invocations", t.Tenant)
	}
	ok := 0
	for _, r := range recs {
		if r.Outcome == OutcomeOK {
			ok++
		}
	}
	if got := float64(ok) / float64(len(recs)); got < t.Fraction {
		return fmt.Errorf("tenant %q success rate %.1f%% (%d/%d) below the %.1f%% floor",
			t.Tenant, 100*got, ok, len(recs), 100*t.Fraction)
	}
	return nil
}

// TenantBoundedP99 asserts one tenant's successful invocations kept a
// bounded 99th-percentile wall latency — the victim-side half of the
// noisy-neighbor contract: an aggressor's backlog must not inflate the
// victims' tail beyond the bound.
type TenantBoundedP99 struct {
	Tenant string
	Max    time.Duration
}

// Name implements Invariant.
func (t TenantBoundedP99) Name() string {
	return fmt.Sprintf("tenant-p99-under(%s,%v)", t.Tenant, t.Max)
}

// Check implements Invariant.
func (t TenantBoundedP99) Check(d *RunData) error {
	var ok []time.Duration
	for _, r := range d.tenantRecords(t.Tenant) {
		if r.Outcome == OutcomeOK {
			ok = append(ok, r.Latency)
		}
	}
	if len(ok) == 0 {
		return fmt.Errorf("tenant %q has no successful invocations to measure", t.Tenant)
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
	if p := ok[rankIndex(len(ok), 0.99)]; p > t.Max {
		return fmt.Errorf("tenant %q p99 %v exceeds bound %v", t.Tenant, p, t.Max)
	}
	return nil
}

// ShedsChargedTo asserts that at least MinShare of all shed outcomes
// were charged to the named tenant — the isolation half of the
// noisy-neighbor contract: the aggressor that offered the excess load
// absorbs the sheds, instead of spreading them across the victims.
// Vacuously passes when the run shed nothing.
type ShedsChargedTo struct {
	Tenant   string
	MinShare float64
}

// Name implements Invariant.
func (s ShedsChargedTo) Name() string {
	return fmt.Sprintf("sheds-charged-to(%s,>=%.0f%%)", s.Tenant, 100*s.MinShare)
}

// Check implements Invariant.
func (s ShedsChargedTo) Check(d *RunData) error {
	total, charged := 0, 0
	tenant := core.NormalizeTenant(s.Tenant)
	for _, r := range d.Records {
		if r.Outcome != OutcomeShed {
			continue
		}
		total++
		if core.NormalizeTenant(r.Tenant) == tenant {
			charged++
		}
	}
	if total == 0 {
		return nil // nothing shed, nothing to charge
	}
	if got := float64(charged) / float64(total); got < s.MinShare {
		return fmt.Errorf("tenant %q was charged %.1f%% of sheds (%d/%d), want at least %.1f%%",
			s.Tenant, 100*got, charged, total, 100*s.MinShare)
	}
	return nil
}

// PreWarmed asserts the predictive pre-warm pool booted at least Min
// speculative runners: the arrival-rate estimator learned the trace's
// idle gaps and spun capacity up ahead of predicted demand instead of
// eating a cold start on it. A floor for the same reason as the other
// two — predictions that land inside the skip window are legitimately
// dropped, so only a minimum is portable.
type PreWarmed struct{ Min int }

// Name implements Invariant.
func (p PreWarmed) Name() string { return fmt.Sprintf("pre-warmed(>=%d)", p.Min) }

// Check implements Invariant.
func (p PreWarmed) Check(d *RunData) error {
	var boots int
	for _, st := range d.Stats {
		boots += st.PreWarms
	}
	if boots < p.Min {
		return fmt.Errorf("pre-warm pool booted %d speculative runners, want at least %d", boots, p.Min)
	}
	return nil
}
