package scenario

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Event is one invocation in a trace: fire kernel Kernel with problem
// size N and a payload of Payload bytes, At after the replay starts
// (modeled time).
type Event struct {
	At      time.Duration `json:"at"`
	Kernel  string        `json:"kernel"`
	N       float64       `json:"n"`
	Payload int           `json:"payload"`
	// Tenant names the invoking tenant (empty = the server's default
	// tenant), so multi-tenant scenarios can interleave competing
	// workloads in one trace.
	Tenant string `json:"tenant,omitempty"`
}

// Trace is a time-ordered invocation schedule.
type Trace []Event

// Offsets returns the arrival offsets in replay order, the shape
// workload.Replay consumes.
func (t Trace) Offsets() []time.Duration {
	out := make([]time.Duration, len(t))
	for i, e := range t {
		out[i] = e.At
	}
	return out
}

// Duration returns the offset of the last event (zero for an empty
// trace) — the modeled span of the arrival schedule.
func (t Trace) Duration() time.Duration {
	if len(t) == 0 {
		return 0
	}
	return t[len(t)-1].At
}

// Fingerprint hashes the full trace content (offsets at millisecond
// granularity, kernel names, sizes, payload lengths) to a short hex
// string. Two runs that print the same fingerprint replayed the same
// trace — it is part of the deterministic output surface that the
// reproducibility check diffs across runs.
func (t Trace) Fingerprint() string {
	h := fnv.New64a()
	for _, e := range t {
		fmt.Fprintf(h, "%d|%s|%g|%d|%s;", e.At.Milliseconds(), e.Kernel, e.N, e.Payload, e.Tenant)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// KernelMix weights one kernel within a synthesized trace.
type KernelMix struct {
	// Kernel is the kernel name (must be registered by the scenario).
	Kernel string `json:"kernel"`
	// Weight is the relative probability of drawing this kernel.
	Weight float64 `json:"weight"`
	// MinN and MaxN bound the uniformly drawn problem size.
	MinN float64 `json:"min_n,omitempty"`
	MaxN float64 `json:"max_n,omitempty"`
	// Payload is the in-band payload size in bytes (0 = none).
	Payload int `json:"payload,omitempty"`
	// Tenant stamps events drawn from this entry with a tenant identity
	// (empty = the server's default tenant).
	Tenant string `json:"tenant,omitempty"`
}

// TraceSpec describes a synthetic trace: how many events, their arrival
// process, and the kernel mix. It is pure data so the registry can embed
// it and Synthesize can derive the same trace from it for any seed.
type TraceSpec struct {
	Events   int         `json:"events"`
	Arrivals ArrivalSpec `json:"arrivals"`
	Mix      []KernelMix `json:"mix"`
}

// Synthesize expands the spec into a concrete trace using a PRNG seeded
// with seed. The same (spec, seed) pair always yields the same trace —
// the foundation of the harness's reproducibility guarantee.
func Synthesize(spec TraceSpec, seed int64) (Trace, error) {
	if spec.Events <= 0 {
		return nil, fmt.Errorf("scenario: trace needs a positive event count, got %d", spec.Events)
	}
	if len(spec.Mix) == 0 {
		return nil, fmt.Errorf("scenario: trace needs a kernel mix")
	}
	var totalWeight float64
	for i, m := range spec.Mix {
		if m.Kernel == "" {
			return nil, fmt.Errorf("scenario: mix entry %d has no kernel", i)
		}
		if m.Weight <= 0 {
			return nil, fmt.Errorf("scenario: mix entry %d (%s) needs a positive weight", i, m.Kernel)
		}
		if m.MinN < 0 || m.MaxN < m.MinN {
			return nil, fmt.Errorf("scenario: mix entry %d (%s) has invalid size range [%g, %g]",
				i, m.Kernel, m.MinN, m.MaxN)
		}
		totalWeight += m.Weight
	}
	proc, err := spec.Arrivals.build()
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(seed))
	trace := make(Trace, 0, spec.Events)
	var at time.Duration
	for i := 0; i < spec.Events; i++ {
		if i > 0 {
			at += proc.next(rng)
		}
		m := drawMix(spec.Mix, totalWeight, rng)
		n := m.MinN
		if m.MaxN > m.MinN {
			n = m.MinN + rng.Float64()*(m.MaxN-m.MinN)
		}
		trace = append(trace, Event{At: at, Kernel: m.Kernel, N: n, Payload: m.Payload, Tenant: m.Tenant})
	}
	return trace, nil
}

// drawMix picks a mix entry proportionally to its weight.
func drawMix(mix []KernelMix, total float64, rng *rand.Rand) KernelMix {
	x := rng.Float64() * total
	for _, m := range mix {
		if x < m.Weight {
			return m
		}
		x -= m.Weight
	}
	return mix[len(mix)-1]
}

// ParseCSV reads a trace from CSV text, one event per line:
//
//	offset_ms,kernel,n,payload_bytes[,tenant]
//
// The fifth field is optional and names the invoking tenant (absent or
// empty = the server's default tenant), so recorded multi-tenant traces
// round-trip. Blank lines and lines starting with '#' are ignored; a
// header line beginning with "offset" is skipped. Offsets must be
// non-decreasing (the open-loop replay contract), so externally recorded
// traces are validated at load time instead of failing mid-replay.
func ParseCSV(r io.Reader) (Trace, error) {
	var trace Trace
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if strings.HasPrefix(strings.ToLower(text), "offset") {
			continue // header
		}
		fields := strings.Split(text, ",")
		if len(fields) != 4 && len(fields) != 5 {
			return nil, fmt.Errorf("scenario: trace line %d: want 4 or 5 fields offset_ms,kernel,n,payload[,tenant], got %d", line, len(fields))
		}
		offMS, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil || offMS < 0 {
			return nil, fmt.Errorf("scenario: trace line %d: bad offset %q", line, fields[0])
		}
		kernel := strings.TrimSpace(fields[1])
		if kernel == "" {
			return nil, fmt.Errorf("scenario: trace line %d: empty kernel", line)
		}
		n, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("scenario: trace line %d: bad n %q", line, fields[2])
		}
		payload, err := strconv.Atoi(strings.TrimSpace(fields[3]))
		if err != nil || payload < 0 {
			return nil, fmt.Errorf("scenario: trace line %d: bad payload %q", line, fields[3])
		}
		var tenant string
		if len(fields) == 5 {
			tenant = strings.TrimSpace(fields[4])
		}
		trace = append(trace, Event{
			At:      time.Duration(offMS * float64(time.Millisecond)),
			Kernel:  kernel,
			N:       n,
			Payload: payload,
			Tenant:  tenant,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scenario: reading trace: %w", err)
	}
	if len(trace) == 0 {
		return nil, fmt.Errorf("scenario: trace is empty")
	}
	if !sort.SliceIsSorted(trace, func(i, j int) bool { return trace[i].At < trace[j].At }) {
		return nil, fmt.Errorf("scenario: trace offsets must be non-decreasing")
	}
	return trace, nil
}
