package scenario

import (
	"sort"
	"strings"
	"testing"
	"time"

	"kaas/internal/faults"
	"kaas/internal/netshape"
)

func testTraceSpec(kind string) TraceSpec {
	a := ArrivalSpec{Kind: kind, Mean: 10 * time.Millisecond}
	switch kind {
	case "mmpp":
		a.Burst = 2 * time.Millisecond
		a.SwitchProb = 0.1
	case "pareto":
		a.Alpha = 1.5
	case "diurnal":
		a.Amplitude = 0.5
		a.Period = time.Second
	}
	return TraceSpec{
		Events:   200,
		Arrivals: a,
		Mix: []KernelMix{
			{Kernel: "mci", Weight: 3, MinN: 1e8, MaxN: 1e9},
			{Kernel: "mci", Weight: 1, MinN: 1e9, MaxN: 2e9, Payload: 512},
		},
	}
}

// TestSynthesizeDeterministic: same (spec, seed) must yield an identical
// trace; a different seed must not. Every arrival kind is exercised and
// must emit a valid, replayable (non-decreasing) schedule.
func TestSynthesizeDeterministic(t *testing.T) {
	for _, kind := range []string{"uniform", "poisson", "mmpp", "pareto", "diurnal"} {
		t.Run(kind, func(t *testing.T) {
			spec := testTraceSpec(kind)
			a, err := Synthesize(spec, 42)
			if err != nil {
				t.Fatalf("Synthesize: %v", err)
			}
			b, err := Synthesize(spec, 42)
			if err != nil {
				t.Fatalf("Synthesize: %v", err)
			}
			if a.Fingerprint() != b.Fingerprint() {
				t.Errorf("same seed, different traces: %s vs %s", a.Fingerprint(), b.Fingerprint())
			}
			if len(a) != spec.Events {
				t.Errorf("got %d events, want %d", len(a), spec.Events)
			}
			offs := a.Offsets()
			if !sort.SliceIsSorted(offs, func(i, j int) bool { return offs[i] < offs[j] }) {
				t.Error("offsets are not non-decreasing")
			}
			for i, e := range a {
				if e.N < 1e8 || e.N > 2e9 {
					t.Fatalf("event %d size %g outside the mix range", i, e.N)
				}
			}
			if kind != "uniform" {
				c, err := Synthesize(spec, 43)
				if err != nil {
					t.Fatalf("Synthesize: %v", err)
				}
				if c.Fingerprint() == a.Fingerprint() {
					t.Error("different seeds produced the same trace")
				}
			}
		})
	}
}

func TestSynthesizeValidation(t *testing.T) {
	base := testTraceSpec("poisson")
	cases := []struct {
		name   string
		mutate func(*TraceSpec)
	}{
		{"zero-events", func(s *TraceSpec) { s.Events = 0 }},
		{"empty-mix", func(s *TraceSpec) { s.Mix = nil }},
		{"zero-weight", func(s *TraceSpec) { s.Mix[0].Weight = 0 }},
		{"nameless-kernel", func(s *TraceSpec) { s.Mix[0].Kernel = "" }},
		{"inverted-size-range", func(s *TraceSpec) { s.Mix[0].MaxN = s.Mix[0].MinN - 1 }},
		{"unknown-arrival-kind", func(s *TraceSpec) { s.Arrivals.Kind = "fractal" }},
		{"nonpositive-mean", func(s *TraceSpec) { s.Arrivals.Mean = 0 }},
		{"mmpp-burst-above-mean", func(s *TraceSpec) {
			s.Arrivals = ArrivalSpec{Kind: "mmpp", Mean: time.Millisecond, Burst: time.Second, SwitchProb: 0.1}
		}},
		{"mmpp-bad-switch-prob", func(s *TraceSpec) {
			s.Arrivals = ArrivalSpec{Kind: "mmpp", Mean: time.Second, Burst: time.Millisecond, SwitchProb: 1.5}
		}},
		{"pareto-infinite-mean", func(s *TraceSpec) {
			s.Arrivals = ArrivalSpec{Kind: "pareto", Mean: time.Millisecond, Alpha: 0.9}
		}},
		{"diurnal-bad-amplitude", func(s *TraceSpec) {
			s.Arrivals = ArrivalSpec{Kind: "diurnal", Mean: time.Millisecond, Amplitude: 1.0, Period: time.Second}
		}},
		{"diurnal-no-period", func(s *TraceSpec) {
			s.Arrivals = ArrivalSpec{Kind: "diurnal", Mean: time.Millisecond, Amplitude: 0.5}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := testTraceSpec("poisson")
			spec.Mix = append([]KernelMix(nil), base.Mix...)
			tc.mutate(&spec)
			if _, err := Synthesize(spec, 1); err == nil {
				t.Errorf("Synthesize accepted invalid spec %+v", spec)
			}
		})
	}
}

func TestParseCSV(t *testing.T) {
	trace, err := ParseCSV(strings.NewReader(`# recorded trace
offset_ms,kernel,n,payload

0,mci,1000000,0
12.5,mci,2000000,1024
40,matmul,500,0
`))
	if err != nil {
		t.Fatalf("ParseCSV: %v", err)
	}
	if len(trace) != 3 {
		t.Fatalf("got %d events, want 3", len(trace))
	}
	if trace[1].At != 12500*time.Microsecond || trace[1].Payload != 1024 {
		t.Errorf("event 1 = %+v, want offset 12.5ms payload 1024", trace[1])
	}
	if trace[2].Kernel != "matmul" {
		t.Errorf("event 2 kernel = %q, want matmul", trace[2].Kernel)
	}

	bad := []struct {
		name, csv string
	}{
		{"empty", "# nothing\n"},
		{"missing-field", "0,mci,100\n"},
		{"negative-offset", "-5,mci,100,0\n"},
		{"bad-n", "0,mci,huge,0\n"},
		{"bad-payload", "0,mci,100,many\n"},
		{"empty-kernel", "0,,100,0\n"},
		{"decreasing-offsets", "10,mci,100,0\n5,mci,100,0\n"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseCSV(strings.NewReader(tc.csv)); err == nil {
				t.Errorf("ParseCSV accepted %q", tc.csv)
			}
		})
	}
}

// TestChaosTransitions: the scripted transition count must be a pure
// function of the spec — it is part of the deterministic output surface.
func TestChaosTransitions(t *testing.T) {
	c := Chaos{
		Flaps: []FlapSpec{
			{Device: 0, Schedule: faults.FlapSchedule{Cycles: 3}},
			{Device: 1, Schedule: faults.FlapSchedule{Cycles: 2}},
		},
		Link:      &LinkSpec{Degraded: netshape.Profile{RTT: time.Millisecond, BandwidthBps: 1e9}},
		ConnKills: &ConnKillSpec{Kills: 4},
		Drain:     &DrainSpec{},
	}
	// 2*(3+2) flap transitions + 2 link + 4 kills + 1 drain.
	if got := c.Transitions(); got != 17 {
		t.Errorf("Transitions = %d, want 17", got)
	}
	if got := (Chaos{}).Transitions(); got != 0 {
		t.Errorf("empty chaos Transitions = %d, want 0", got)
	}
}
