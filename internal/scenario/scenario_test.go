package scenario

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/client"
	"kaas/internal/core"
	"kaas/internal/cplane"
	"kaas/internal/wire"
)

// testScale compresses modeled time 2000x so the full matrix stays fast.
const testScale = 2000

// TestScenarioMatrix replays every registered scenario with a fixed seed
// and requires every invariant to hold — the per-scenario regression
// table the CI scenario gate runs.
func TestScenarioMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario matrix skipped in short mode")
	}
	for _, name := range List() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := Lookup(name)
			if err != nil {
				t.Fatalf("Lookup: %v", err)
			}
			res, err := Run(context.Background(), spec, 1, testScale)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, v := range res.Verdicts {
				if !v.Pass {
					t.Errorf("invariant %s failed: %s", v.Invariant, v.Detail)
				}
			}
			if !res.Passed {
				t.Errorf("scenario %s did not pass (counts: %v)", name, res.Counts)
			}
			if res.Issued != res.Events {
				t.Errorf("issued %d of %d events", res.Issued, res.Events)
			}
			if len(res.Verdicts) != len(spec.Invariants) {
				t.Errorf("got %d verdicts for %d invariants", len(res.Verdicts), len(spec.Invariants))
			}
		})
	}
}

// TestScenarioDeterministicSurface runs one scenario twice with the same
// seed and requires the deterministic output surface to be byte-for-byte
// identical — the same property `kaasbench -scenario` CI reproducibility
// diffs — and a different seed to produce a different trace.
func TestScenarioDeterministicSurface(t *testing.T) {
	spec, err := Lookup("replay-burst")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	run := func(seed int64) *Result {
		t.Helper()
		res, err := Run(context.Background(), spec, seed, testScale)
		if err != nil {
			t.Fatalf("Run(seed=%d): %v", seed, err)
		}
		return res
	}
	a, b := run(7), run(7)
	aLines := strings.Join(a.DeterministicLines(), "\n")
	bLines := strings.Join(b.DeterministicLines(), "\n")
	if aLines != bLines {
		t.Errorf("same-seed runs diverged:\n--- run 1\n%s\n--- run 2\n%s", aLines, bLines)
	}
	if other := run(8); other.Fingerprint == a.Fingerprint {
		t.Errorf("seeds 7 and 8 produced the same trace fingerprint %s", a.Fingerprint)
	}
}

// TestScenarioFailingInvariantFailsRun wires an unsatisfiable invariant
// into a scenario and requires the run to FAIL — if the checker were
// neutered (verdicts ignored, Check never called), this test catches it.
func TestScenarioFailingInvariantFailsRun(t *testing.T) {
	spec, err := Lookup("replay-diurnal")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	spec.Invariants = []Invariant{
		Accounted{},
		BoundedP99{Max: time.Nanosecond}, // no real invocation is this fast
	}
	res, err := Run(context.Background(), spec, 1, testScale)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Passed {
		t.Fatal("run passed despite an unsatisfiable invariant — the checker is not wired in")
	}
	var failed bool
	for _, v := range res.Verdicts {
		if v.Invariant == (BoundedP99{Max: time.Nanosecond}).Name() && !v.Pass {
			failed = true
			if v.Detail == "" {
				t.Error("failing verdict carries no diagnostic detail")
			}
		}
	}
	if !failed {
		t.Error("the unsatisfiable invariant did not produce a failing verdict")
	}
	if !strings.Contains(strings.Join(res.DeterministicLines(), "\n"), "result: FAIL") {
		t.Error("deterministic output does not report FAIL")
	}
}

// TestScenarioNoisyNeighborAntiNeutering reruns the noisy-neighbor spec
// with fair queueing disabled and requires the per-tenant invariants to
// FAIL: the flat admission gate sheds whoever arrives at a full server,
// so the victims lose their success floors and the aggressor no longer
// absorbs ~all of the sheds. If this run passes, the scenario has been
// neutered — it no longer proves that WFQ is doing the isolating.
func TestScenarioNoisyNeighborAntiNeutering(t *testing.T) {
	if testing.Short() {
		t.Skip("anti-neutering run skipped in short mode")
	}
	spec, err := Lookup("noisy-neighbor")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	spec.DisableFairQueueing = true
	res, err := Run(context.Background(), spec, 1, testScale)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Passed {
		t.Fatalf("noisy-neighbor passed with fair queueing disabled (counts: %v) — the scenario no longer proves isolation", res.Counts)
	}
	var tenantFailure bool
	for _, v := range res.Verdicts {
		if !v.Pass && (strings.HasPrefix(v.Invariant, "tenant-") || strings.HasPrefix(v.Invariant, "sheds-charged-to")) {
			tenantFailure = true
		}
	}
	if !tenantFailure {
		t.Error("no per-tenant invariant failed under FCFS — the floors are too loose to detect the regression")
	}
}

// TestScenarioCancel aborts a run mid-replay and requires a prompt,
// typed return instead of a hang.
func TestScenarioCancel(t *testing.T) {
	spec, err := Lookup("chaos-flap")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, spec, 1, 200) // slow scale: the run outlives the cancel
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Run = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

func TestLookupUnknownListsKnown(t *testing.T) {
	_, err := Lookup("no-such-scenario")
	if err == nil {
		t.Fatal("Lookup accepted an unknown scenario")
	}
	if !strings.Contains(err.Error(), "replay-diurnal") {
		t.Errorf("error %q does not list known scenarios", err)
	}
	if len(List()) < 6 {
		t.Errorf("registry has %d scenarios, want at least 6", len(List()))
	}
}

// --- invariant checker unit tests: each invariant must detect its
// violation on crafted run data (the anti-neutering suite). ---

// passingData builds a RunData that satisfies every registry invariant.
func passingData() *RunData {
	d := &RunData{
		Issued: 4,
		Records: []Record{
			{Index: 0, Outcome: OutcomeOK, Latency: time.Millisecond},
			{Index: 1, Outcome: OutcomeOK, Latency: 2 * time.Millisecond},
			{Index: 2, Outcome: OutcomeOK, Latency: 3 * time.Millisecond},
			{Index: 3, Outcome: OutcomeShed, Latency: time.Microsecond},
		},
		Counts:              map[Outcome]int{OutcomeOK: 3, OutcomeShed: 1},
		ScriptedTransitions: 2,
		ObservedTransitions: 2,
		BreakerTransitions:  3,
		Drained:             true,
		Stats: []core.Stats{{
			PerDevice: map[string]core.DeviceStats{
				"gpu0": {BreakerState: "closed", BreakerTransitions: 3},
			},
		}},
	}
	return d
}

func TestInvariantsDetectViolations(t *testing.T) {
	cases := []struct {
		name    string
		inv     Invariant
		mutate  func(*RunData)
		passing bool
	}{
		{"accounted-ok", Accounted{}, nil, true},
		{"accounted-lost-record", Accounted{}, func(d *RunData) {
			d.Records = d.Records[:3]
		}, false},
		{"accounted-count-drift", Accounted{}, func(d *RunData) {
			d.Counts[OutcomeOK] = 1
		}, false},
		{"typed-ok", TypedFailures{}, nil, true},
		{"typed-untyped-error", TypedFailures{}, func(d *RunData) {
			d.Records[3] = Record{Index: 3, Outcome: OutcomeUntyped, Err: "write: broken pipe"}
			d.Counts = map[Outcome]int{OutcomeOK: 3, OutcomeUntyped: 1}
		}, false},
		{"outcomes-ok", OutcomesIn{Allowed: []Outcome{OutcomeOK, OutcomeShed}}, nil, true},
		{"outcomes-disallowed", OutcomesIn{Allowed: []Outcome{OutcomeOK}}, nil, false},
		{"min-success-ok", MinSuccess{Fraction: 0.75}, nil, true},
		{"min-success-below-floor", MinSuccess{Fraction: 0.8}, nil, false},
		{"min-success-excl-shed-ok", MinSuccessExclShed{Fraction: 0.99}, nil, true},
		{"min-success-excl-shed-hard-failures", MinSuccessExclShed{Fraction: 0.99}, func(d *RunData) {
			d.Records[3] = Record{Index: 3, Outcome: OutcomeUnavailable, Err: "unavailable"}
			d.Counts = map[Outcome]int{OutcomeOK: 3, OutcomeUnavailable: 1}
		}, false},
		{"failed-over-ok", FailedOver{Min: 1}, func(d *RunData) {
			d.Failover = &cplane.RouterStats{Dispatches: 4, Redispatches: 1, FailedOver: 1}
		}, true},
		{"failed-over-no-stats", FailedOver{Min: 1}, nil, false},
		{"failed-over-never-fired", FailedOver{Min: 1}, func(d *RunData) {
			d.Failover = &cplane.RouterStats{Dispatches: 4}
		}, false},
		{"p99-ok", BoundedP99{Max: time.Second}, nil, true},
		{"p99-stall", BoundedP99{Max: time.Second}, func(d *RunData) {
			d.Records[2].Latency = time.Minute
		}, false},
		{"shed-ok", ShedBounded{MaxFraction: 0.25}, nil, true},
		{"shed-storm", ShedBounded{MaxFraction: 0.25}, func(d *RunData) {
			d.Counts[OutcomeShed] = 3
			d.Counts[OutcomeOK] = 1
		}, false},
		{"breaker-ok", BreakerRecovered{MinTransitions: 3}, nil, true},
		{"breaker-never-tripped", BreakerRecovered{MinTransitions: 4}, nil, false},
		{"breaker-stuck-open", BreakerRecovered{MinTransitions: 3}, func(d *RunData) {
			d.Stats[0].PerDevice["gpu0"] = core.DeviceStats{BreakerState: "open", BreakerTransitions: 3}
		}, false},
		{"drain-ok", DrainClean{}, nil, true},
		{"drain-never-ran", DrainClean{}, func(d *RunData) { d.Drained = false }, false},
		{"drain-timed-out", DrainClean{}, func(d *RunData) {
			d.DrainErr = context.DeadlineExceeded
		}, false},
		{"drain-left-inflight", DrainClean{}, func(d *RunData) {
			st := d.Stats[0]
			st.InFlight = 2
			d.Stats[0] = st
		}, false},
		{"transitions-ok", TransitionsComplete{}, nil, true},
		{"transitions-lost-cycle", TransitionsComplete{}, func(d *RunData) {
			d.ObservedTransitions = 1
		}, false},
		{"scaled-to-zero-ok", ScaledToZero{MinReaps: 2}, func(d *RunData) {
			d.Stats[0].Reaps = 2
		}, true},
		{"scaled-to-zero-never-reaped", ScaledToZero{MinReaps: 2}, func(d *RunData) {
			d.Stats[0].Reaps = 1
		}, false},
		{"cache-warmed-ok", CacheWarmed{MinHits: 2}, func(d *RunData) {
			d.Stats[0].PerKernel = map[string]core.KernelStats{
				"mci": {CacheHits: 2, CacheMisses: 1},
			}
		}, true},
		{"cache-warmed-all-misses", CacheWarmed{MinHits: 2}, func(d *RunData) {
			d.Stats[0].PerKernel = map[string]core.KernelStats{
				"mci": {CacheHits: 0, CacheMisses: 3},
			}
		}, false},
		{"pre-warmed-ok", PreWarmed{Min: 1}, func(d *RunData) {
			d.Stats[0].PreWarms = 1
		}, true},
		{"pre-warmed-never-fired", PreWarmed{Min: 1}, nil, false},
		{"oob-served-ok", OOBServed{Min: 2}, func(d *RunData) {
			d.Stats[0].DataPlane.OOBInvocations = 2
		}, true},
		{"oob-served-all-inband", OOBServed{Min: 2}, func(d *RunData) {
			d.Stats[0].DataPlane.OOBInvocations = 1
			d.Stats[0].DataPlane.InBandBytes = 1 << 20
		}, false},
		{"leases-revoked-ok", LeasesRevoked{Min: 1}, func(d *RunData) {
			d.Stats[0].DataPlane.LeaseRevocations = 2
		}, true},
		{"leases-revoked-never-fired", LeasesRevoked{Min: 1}, nil, false},
		{"tenant-min-success-ok", TenantMinSuccess{Tenant: "victim", Fraction: 0.9}, func(d *RunData) {
			d.Records[0].Tenant = "victim"
			d.Records[1].Tenant = "victim"
			d.Records[3].Tenant = "noisy"
		}, true},
		{"tenant-min-success-starved", TenantMinSuccess{Tenant: "victim", Fraction: 0.9}, func(d *RunData) {
			d.Records[0].Tenant = "victim"
			d.Records[3].Tenant = "victim" // the shed lands on the victim: 1/2
		}, false},
		{"tenant-min-success-absent-tenant", TenantMinSuccess{Tenant: "ghost", Fraction: 0.5}, nil, false},
		{"tenant-min-success-default-normalized", TenantMinSuccess{Tenant: "", Fraction: 0.7}, nil, true},
		{"tenant-p99-ok", TenantBoundedP99{Tenant: "victim", Max: time.Second}, func(d *RunData) {
			d.Records[0].Tenant = "victim"
			d.Records[1].Tenant = "victim"
		}, true},
		{"tenant-p99-stall", TenantBoundedP99{Tenant: "victim", Max: time.Second}, func(d *RunData) {
			d.Records[2].Tenant = "victim"
			d.Records[2].Latency = time.Minute
		}, false},
		{"sheds-charged-ok", ShedsChargedTo{Tenant: "noisy", MinShare: 0.9}, func(d *RunData) {
			d.Records[3].Tenant = "noisy" // the only shed
		}, true},
		{"sheds-charged-spread", ShedsChargedTo{Tenant: "noisy", MinShare: 0.9}, nil, false},
		{"sheds-charged-vacuous", ShedsChargedTo{Tenant: "noisy", MinShare: 0.9}, func(d *RunData) {
			d.Records[3].Outcome = OutcomeOK // nothing shed, nothing to charge
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := passingData()
			if tc.mutate != nil {
				tc.mutate(d)
			}
			err := tc.inv.Check(d)
			if tc.passing && err != nil {
				t.Errorf("%s.Check = %v, want pass", tc.inv.Name(), err)
			}
			if !tc.passing && err == nil {
				t.Errorf("%s.Check passed on violating data — the invariant is neutered", tc.inv.Name())
			}
		})
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Outcome
	}{
		{"nil", nil, OutcomeOK},
		{"overloaded", fmt.Errorf("wrapped: %w", core.ErrOverloaded), OutcomeShed},
		{"draining", core.ErrDraining, OutcomeDraining},
		{"server-closed", core.ErrServerClosed, OutcomeDraining},
		{"unavailable", core.ErrUnavailable, OutcomeUnavailable},
		{"device-failed", fmt.Errorf("core: failover exhausted after 3 attempts for %q: %w", "mci", accel.ErrDeviceFailed), OutcomeUnavailable},
		{"context-released", accel.ErrContextReleased, OutcomeUnavailable},
		{"deadline", context.DeadlineExceeded, OutcomeDeadline},
		{"remote-overloaded", &client.RemoteError{Code: wire.CodeOverloaded}, OutcomeShed},
		{"remote-unavailable", &client.RemoteError{Code: wire.CodeUnavailable}, OutcomeUnavailable},
		{"remote-deadline", &client.RemoteError{Code: wire.CodeDeadlineExceeded}, OutcomeDeadline},
		{"remote-internal", &client.RemoteError{Code: wire.CodeInternal}, OutcomeUntyped},
		{"raw", errors.New("write: broken pipe"), OutcomeUntyped},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(tc.err); got != tc.want {
				t.Errorf("Classify(%v) = %q, want %q", tc.err, got, tc.want)
			}
		})
	}
}
