// Package scenario is the trace-driven, chaos-injecting evaluation
// harness of the repo: it synthesizes realistic arrival processes into
// replayable traces, composes the fault injectors of internal/faults and
// internal/netshape into named, seeded chaos scenarios, and checks
// pass/fail invariants (no lost work, typed failures only, bounded tail
// latency, breaker recovery, lossless drain) continuously over each run.
//
// Reproducibility rules:
//
//   - Every source of randomness derives from one caller-provided seed.
//     The trace (arrival offsets, kernel mix, parameters) is synthesized
//     from a PRNG seeded with it, and chaos that needs randomness (e.g.
//     which connection to kill) uses sub-seeds derived from it.
//   - Chaos schedules are scripted in modeled time with fixed cycle
//     counts, never "until the run ends", so the number of injected
//     transitions is a function of the spec alone.
//   - Consequently a scenario's deterministic surface — trace
//     fingerprint, issued-invocation count, scripted transition count,
//     and (by construction of robust invariant bounds) the invariant
//     verdicts — is identical across runs with the same seed. Measured
//     latencies and the admitted/shed split depend on real scheduling
//     and are reported as diagnostics, not as part of that surface.
package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// ArrivalSpec selects and parameterizes an arrival process. It is pure
// data (no state), so specs can live in the registry and be reused
// across runs without bleeding generator state between them.
type ArrivalSpec struct {
	// Kind names the process: "uniform", "poisson", "mmpp", "pareto",
	// or "diurnal".
	Kind string `json:"kind"`
	// Mean is the mean inter-arrival gap (the calm-state mean for mmpp,
	// the scale minimum for pareto, the diurnal midline).
	Mean time.Duration `json:"mean"`

	// Alpha is the Pareto tail index (smaller = heavier tail); values
	// in (1, 2] give a finite mean with pronounced bursts. Pareto only.
	Alpha float64 `json:"alpha,omitempty"`
	// Burst is the burst-state mean gap of the MMPP process.
	Burst time.Duration `json:"burst,omitempty"`
	// SwitchProb is the per-arrival probability of toggling between the
	// MMPP calm and burst states.
	SwitchProb float64 `json:"switch_prob,omitempty"`
	// Amplitude is the diurnal modulation depth in [0, 1): rate swings
	// between Mean/(1+Amplitude) and Mean/(1-Amplitude) over a Period.
	Amplitude float64 `json:"amplitude,omitempty"`
	// Period is the diurnal cycle length in modeled time.
	Period time.Duration `json:"period,omitempty"`
}

// process generates successive inter-arrival gaps. Implementations may
// keep state (the MMPP mode, the diurnal position); Synthesize builds a
// fresh one per trace so the state never leaks across runs.
type process interface {
	next(rng *rand.Rand) time.Duration
}

// build validates the spec and constructs its process.
func (a ArrivalSpec) build() (process, error) {
	if a.Mean <= 0 {
		return nil, fmt.Errorf("scenario: arrival mean must be positive, got %v", a.Mean)
	}
	switch a.Kind {
	case "uniform":
		return uniformProcess{gap: a.Mean}, nil
	case "poisson":
		return poissonProcess{mean: a.Mean}, nil
	case "mmpp":
		if a.Burst <= 0 || a.Burst > a.Mean {
			return nil, fmt.Errorf("scenario: mmpp burst mean must be in (0, mean], got %v", a.Burst)
		}
		if a.SwitchProb <= 0 || a.SwitchProb >= 1 {
			return nil, fmt.Errorf("scenario: mmpp switch probability must be in (0, 1), got %v", a.SwitchProb)
		}
		return &mmppProcess{calm: a.Mean, burst: a.Burst, switchProb: a.SwitchProb}, nil
	case "pareto":
		if a.Alpha <= 1 {
			return nil, fmt.Errorf("scenario: pareto alpha must exceed 1 (finite mean), got %v", a.Alpha)
		}
		return paretoProcess{alpha: a.Alpha, min: a.Mean}, nil
	case "diurnal":
		if a.Amplitude < 0 || a.Amplitude >= 1 {
			return nil, fmt.Errorf("scenario: diurnal amplitude must be in [0, 1), got %v", a.Amplitude)
		}
		if a.Period <= 0 {
			return nil, fmt.Errorf("scenario: diurnal period must be positive, got %v", a.Period)
		}
		return &diurnalProcess{mean: a.Mean, amplitude: a.Amplitude, period: a.Period}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown arrival kind %q", a.Kind)
	}
}

// uniformProcess emits a constant gap — the closed-loop-style baseline.
type uniformProcess struct{ gap time.Duration }

func (p uniformProcess) next(*rand.Rand) time.Duration { return p.gap }

// poissonProcess emits exponentially distributed gaps (memoryless
// arrivals, the standard open-loop model).
type poissonProcess struct{ mean time.Duration }

func (p poissonProcess) next(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(p.mean))
}

// mmppProcess is a two-state Markov-modulated Poisson process: calm
// periods of sparse arrivals punctuated by bursts of dense ones, the
// bursty shape serverless traces exhibit (cf. the Azure Functions traces
// MQFQ-Sticky replays).
type mmppProcess struct {
	calm, burst time.Duration
	switchProb  float64
	bursting    bool
}

func (p *mmppProcess) next(rng *rand.Rand) time.Duration {
	if rng.Float64() < p.switchProb {
		p.bursting = !p.bursting
	}
	mean := p.calm
	if p.bursting {
		mean = p.burst
	}
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// paretoProcess emits Pareto-distributed gaps: most arrivals come
// back-to-back at the minimum gap, with occasional very long silences —
// the heavy-tailed inter-arrival behavior of production traces.
type paretoProcess struct {
	alpha float64
	min   time.Duration
}

func (p paretoProcess) next(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return time.Duration(float64(p.min) * math.Pow(1/u, 1/p.alpha))
}

// diurnalProcess modulates a Poisson rate sinusoidally over Period,
// tracking its own position along the cycle: daytime peaks, nighttime
// troughs, compressed into modeled time.
type diurnalProcess struct {
	mean      time.Duration
	amplitude float64
	period    time.Duration
	elapsed   time.Duration
}

func (p *diurnalProcess) next(rng *rand.Rand) time.Duration {
	phase := 2 * math.Pi * float64(p.elapsed%p.period) / float64(p.period)
	// Rate modulation: gaps shrink at the peak, stretch in the trough.
	mean := float64(p.mean) / (1 + p.amplitude*math.Sin(phase))
	gap := time.Duration(rng.ExpFloat64() * mean)
	p.elapsed += gap
	return gap
}
