// Package energy accounts modeled energy consumption of simulated hosts,
// the substrate behind the paper's performance-efficiency evaluation
// (§5.2, FLOPS/W). It plays the role of the RAPL and GPU power counters
// the paper samples through Performance Co-Pilot: devices expose a
// two-level power model (idle + busy) integrated over their compute
// activity, and a Meter measures the energy consumed between two points
// in modeled time.
package energy

import (
	"fmt"

	"kaas/internal/accel"
)

// Meter measures energy consumed by a set of devices since its creation.
type Meter struct {
	devices []*accel.Device
	start   []float64
}

// NewMeter starts measuring the given devices.
func NewMeter(devices ...*accel.Device) *Meter {
	m := &Meter{devices: devices, start: make([]float64, len(devices))}
	for i, d := range devices {
		m.start[i] = d.Energy()
	}
	return m
}

// HostMeter measures all devices of a host, including its CPU.
func HostMeter(h *accel.Host) *Meter {
	devices := append(h.Devices(), h.CPU())
	return NewMeter(devices...)
}

// Joules returns the energy consumed since the meter was created.
func (m *Meter) Joules() float64 {
	var total float64
	for i, d := range m.devices {
		total += d.Energy() - m.start[i]
	}
	return total
}

// Efficiency returns work/joules — FLOPS/W when work is FLOPs (since
// FLOP/J = FLOP/s per W). It returns 0 when no energy was consumed.
func Efficiency(work, joules float64) float64 {
	if joules <= 0 {
		return 0
	}
	return work / joules
}

// Format renders an efficiency value like the paper's Fig. 10 axis.
func Format(flopsPerWatt float64) string {
	switch {
	case flopsPerWatt >= 1e9:
		return fmt.Sprintf("%.2f GFLOPS/W", flopsPerWatt/1e9)
	case flopsPerWatt >= 1e6:
		return fmt.Sprintf("%.2f MFLOPS/W", flopsPerWatt/1e6)
	case flopsPerWatt >= 1e3:
		return fmt.Sprintf("%.2f kFLOPS/W", flopsPerWatt/1e3)
	default:
		return fmt.Sprintf("%.2f FLOPS/W", flopsPerWatt)
	}
}
