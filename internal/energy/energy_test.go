package energy

import (
	"context"
	"strings"
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/vclock"
)

func testHost(t *testing.T) (*accel.Host, vclock.Clock) {
	t.Helper()
	clock := vclock.Scaled(2000)
	gpu := accel.Profile{
		Name: "g", Kind: accel.GPU,
		RuntimeInit:   10 * time.Millisecond,
		ComputeRate:   1e9,
		CopyBandwidth: 1e9,
		Slots:         4,
		MemoryBytes:   1 << 30,
		IdlePower:     10,
		BusyPower:     110,
	}
	host, err := accel.NewHost(clock, "e", accel.XeonE52698, gpu)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(host.Close)
	return host, clock
}

func TestMeterMeasuresDelta(t *testing.T) {
	host, _ := testHost(t)
	dev := host.Devices()[0]
	ctx, err := dev.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer ctx.Release()

	m := NewMeter(dev)
	if _, err := ctx.Exec(context.Background(), 2e9); err != nil { // 2 modeled s busy
		t.Fatalf("Exec: %v", err)
	}
	j := m.Joules()
	// Dynamic part alone: 100 W × 2 s = 200 J.
	if j < 180 {
		t.Errorf("Joules = %v, want >= 180", j)
	}
}

func TestHostMeterIncludesCPU(t *testing.T) {
	host, _ := testHost(t)
	m := HostMeter(host)
	// Idle energy accrues with modeled time even without work.
	time.Sleep(5 * time.Millisecond) // ~10 modeled s at scale 2000
	if j := m.Joules(); j <= 0 {
		t.Errorf("idle Joules = %v, want > 0", j)
	}
}

func TestEfficiency(t *testing.T) {
	if got := Efficiency(1e9, 10); got != 1e8 {
		t.Errorf("Efficiency = %v, want 1e8", got)
	}
	if got := Efficiency(1e9, 0); got != 0 {
		t.Errorf("Efficiency with zero energy = %v, want 0", got)
	}
}

func TestFormat(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{2.5e9, "GFLOPS/W"},
		{3e6, "MFLOPS/W"},
		{5e3, "kFLOPS/W"},
		{12, "FLOPS/W"},
	}
	for _, tt := range tests {
		if got := Format(tt.v); !strings.Contains(got, tt.want) {
			t.Errorf("Format(%v) = %q, want suffix %q", tt.v, got, tt.want)
		}
	}
}
