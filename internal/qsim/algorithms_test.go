package qsim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCPPhase(t *testing.T) {
	s, _ := NewState(2)
	_ = s.X(0)
	_ = s.X(1)
	if err := s.CP(0, 1, math.Pi/2); err != nil {
		t.Fatalf("CP: %v", err)
	}
	// |11⟩ picks up e^{iπ/2} = i.
	if cmplx.Abs(s.Amplitudes()[3]-complex(0, 1)) > eps {
		t.Errorf("CP phase on |11⟩ = %v, want i", s.Amplitudes()[3])
	}
	// Control clear: no phase.
	s2, _ := NewState(2)
	_ = s2.X(1)
	_ = s2.CP(0, 1, math.Pi/2)
	if cmplx.Abs(s2.Amplitudes()[2]-1) > eps {
		t.Errorf("CP acted with clear control: %v", s2.Amplitudes()[2])
	}
	if err := s.CP(0, 0, 1); err == nil {
		t.Error("CP(0,0) succeeded")
	}
}

func TestMCZFlipsOnlyAllOnes(t *testing.T) {
	s, _ := NewState(3)
	for q := 0; q < 3; q++ {
		_ = s.H(q)
	}
	if err := s.MCZ(0, 1, 2); err != nil {
		t.Fatalf("MCZ: %v", err)
	}
	for i, a := range s.Amplitudes() {
		want := 1.0
		if i == 7 {
			want = -1
		}
		if real(a)*want < 0 {
			t.Errorf("amplitude %d sign wrong: %v", i, a)
		}
	}
	if err := s.MCZ(); err == nil {
		t.Error("MCZ with no qubits succeeded")
	}
	if err := s.MCZ(0, 0); err == nil {
		t.Error("MCZ with repeated qubit succeeded")
	}
	if err := s.MCZ(9); err == nil {
		t.Error("MCZ out of range succeeded")
	}
}

func TestQFTOfZeroIsUniform(t *testing.T) {
	s, _ := NewState(3)
	if err := s.QFT(); err != nil {
		t.Fatalf("QFT: %v", err)
	}
	want := 1.0 / 8
	for i := range s.Amplitudes() {
		if math.Abs(s.Probability(i)-want) > 1e-12 {
			t.Errorf("P(%d) = %v, want %v", i, s.Probability(i), want)
		}
	}
}

// TestQFTInverseRoundTrip: InverseQFT(QFT(ψ)) == ψ for random states.
func TestQFTInverseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		s, _ := NewState(n)
		for i := 0; i < 12; i++ {
			_ = s.RY(r.Intn(n), r.Float64()*2*math.Pi)
			_ = s.RZ(r.Intn(n), r.Float64()*2*math.Pi)
			a := r.Intn(n)
			b := r.Intn(n - 1)
			if b >= a {
				b++
			}
			_ = s.CX(a, b)
		}
		before := s.Clone()
		if err := s.QFT(); err != nil {
			return false
		}
		if err := s.InverseQFT(); err != nil {
			return false
		}
		for i := range s.amp {
			if cmplx.Abs(s.amp[i]-before.amp[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQFTPeriodicState: the QFT of a period-2 comb concentrates on
// frequencies 0 and N/2.
func TestQFTPeriodicState(t *testing.T) {
	s, _ := NewState(3)
	// Prepare (|000⟩+|010⟩+|100⟩+|110⟩)/2: uniform over even states.
	_ = s.H(1)
	_ = s.H(2)
	if err := s.QFT(); err != nil {
		t.Fatalf("QFT: %v", err)
	}
	p0 := s.Probability(0)
	p4 := s.Probability(4)
	if math.Abs(p0-0.5) > 1e-9 || math.Abs(p4-0.5) > 1e-9 {
		t.Errorf("QFT peaks: P(0)=%v P(4)=%v, want 0.5 each", p0, p4)
	}
}

func TestGroverSearchFindsMarkedState(t *testing.T) {
	for _, tc := range []struct {
		n, marked int
		minP      float64
	}{
		{2, 3, 0.99},  // 2 qubits: one iteration is exact
		{3, 5, 0.90},  // 3 qubits: ~0.945 after 2 iterations
		{4, 11, 0.90}, // 4 qubits: ~0.96 after 3 iterations
	} {
		s, err := GroverSearch(tc.n, tc.marked)
		if err != nil {
			t.Fatalf("GroverSearch(%d, %d): %v", tc.n, tc.marked, err)
		}
		if p := s.Probability(tc.marked); p < tc.minP {
			t.Errorf("GroverSearch(%d, %d): P(marked) = %v, want >= %v",
				tc.n, tc.marked, p, tc.minP)
		}
		if math.Abs(s.Norm()-1) > 1e-9 {
			t.Errorf("norm = %v", s.Norm())
		}
	}
}

func TestGroverSearchValidation(t *testing.T) {
	if _, err := GroverSearch(1, 0); err == nil {
		t.Error("1-qubit Grover succeeded")
	}
	if _, err := GroverSearch(3, 8); err == nil {
		t.Error("out-of-range marked state succeeded")
	}
	if _, err := GroverSearch(3, -1); err == nil {
		t.Error("negative marked state succeeded")
	}
}
