package qsim

import (
	"math"
	"strings"
	"testing"
)

func TestParseCircuitBell(t *testing.T) {
	src := `
		// Bell pair
		qreg q[2];
		h q[0];
		cx q[0], q[1];
	`
	c, err := ParseCircuit(src)
	if err != nil {
		t.Fatalf("ParseCircuit: %v", err)
	}
	if c.NumQubits != 2 || len(c.Gates) != 2 {
		t.Fatalf("circuit shape: %d qubits, %d gates", c.NumQubits, len(c.Gates))
	}
	s, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(s.Probability(0)-0.5) > 1e-12 || math.Abs(s.Probability(3)-0.5) > 1e-12 {
		t.Errorf("not a Bell state: P(00)=%v P(11)=%v", s.Probability(0), s.Probability(3))
	}
}

func TestParseCircuitAllGates(t *testing.T) {
	src := `qreg r[3];
		h r[0]; x r[1]; y r[2]; z r[0]; s r[1]; t r[2];
		rx(0.3) r[0]; ry(pi/4) r[1]; rz(2*pi) r[2];
		cx r[0], r[1]; cz r[1], r[2]; swap r[0], r[2];
		cnot r[2], r[0];`
	c, err := ParseCircuit(src)
	if err != nil {
		t.Fatalf("ParseCircuit: %v", err)
	}
	if len(c.Gates) != 13 {
		t.Errorf("gates = %d, want 13", len(c.Gates))
	}
	st, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(st.Norm()-1) > 1e-9 {
		t.Errorf("norm = %v", st.Norm())
	}
	// Spot-check parsed parameters.
	if c.Gates[7].Kind != GateRY || math.Abs(c.Gates[7].Theta-math.Pi/4) > 1e-12 {
		t.Errorf("ry(pi/4) parsed as %+v", c.Gates[7])
	}
	if c.Gates[8].Kind != GateRZ || math.Abs(c.Gates[8].Theta-2*math.Pi) > 1e-12 {
		t.Errorf("rz(2*pi) parsed as %+v", c.Gates[8])
	}
}

func TestParseCircuitStatementsOnOneLine(t *testing.T) {
	c, err := ParseCircuit("qreg q[1]; h q[0]; z q[0]")
	if err != nil {
		t.Fatalf("ParseCircuit: %v", err)
	}
	if len(c.Gates) != 2 {
		t.Errorf("gates = %d, want 2", len(c.Gates))
	}
}

func TestParseCircuitErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"gate before qreg", "h q[0]; qreg q[1];"},
		{"duplicate qreg", "qreg q[1]; qreg r[1];"},
		{"bad reg decl", "qreg q;"},
		{"bad reg size", "qreg q[x];"},
		{"unknown gate", "qreg q[1]; frob q[0];"},
		{"unknown register", "qreg q[2]; h r[0];"},
		{"qubit out of range", "qreg q[2]; h q[5];"},
		{"negative qubit", "qreg q[2]; h q[-1];"},
		{"missing operand", "qreg q[2]; h"},
		{"too many operands", "qreg q[2]; h q[0], q[1];"},
		{"cx needs two", "qreg q[2]; cx q[0];"},
		{"cx same qubit", "qreg q[2]; cx q[0], q[0];"},
		{"rotation without angle", "qreg q[1]; ry q[0];"},
		{"angle on plain gate", "qreg q[1]; h(0.5) q[0];"},
		{"unterminated angle", "qreg q[1]; ry(0.5 q[0];"},
		{"bad angle", "qreg q[1]; ry(banana) q[0];"},
		{"bad pi fraction", "qreg q[1]; ry(pi/zero) q[0];"},
		{"bad operand syntax", "qreg q[2]; h q0;"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseCircuit(tc.src); err == nil {
				t.Errorf("ParseCircuit(%q) succeeded, want error", tc.src)
			}
		})
	}
}

func TestParseAngleForms(t *testing.T) {
	cases := map[string]float64{
		"0.5":    0.5,
		"pi":     math.Pi,
		"pi/2":   math.Pi / 2,
		"2*pi":   2 * math.Pi,
		"-pi/4":  -math.Pi / 4,
		"-1.25":  -1.25,
		"0":      0,
		"0.5*pi": 0.5 * math.Pi,
	}
	for expr, want := range cases {
		got, err := parseAngle(expr)
		if err != nil {
			t.Errorf("parseAngle(%q): %v", expr, err)
			continue
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("parseAngle(%q) = %v, want %v", expr, got, want)
		}
	}
}

func TestParseCircuitMatchesManualConstruction(t *testing.T) {
	src := `qreg q[2]; ry(0.7) q[0]; cx q[0], q[1]; ry(1.1) q[1];`
	parsed, err := ParseCircuit(src)
	if err != nil {
		t.Fatalf("ParseCircuit: %v", err)
	}
	manual, _ := NewCircuit(2)
	manual.Append(
		Gate{Kind: GateRY, Q: 0, Theta: 0.7},
		Gate{Kind: GateCX, Control: 0, Q: 1},
		Gate{Kind: GateRY, Q: 1, Theta: 1.1},
	)
	a, err := parsed.Run()
	if err != nil {
		t.Fatalf("parsed Run: %v", err)
	}
	b, err := manual.Run()
	if err != nil {
		t.Fatalf("manual Run: %v", err)
	}
	for i := range a.Amplitudes() {
		if d := a.Amplitudes()[i] - b.Amplitudes()[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-20 {
			t.Fatalf("parsed and manual circuits diverge at amplitude %d", i)
		}
	}
}

func TestGateKindStringNewGates(t *testing.T) {
	for k, want := range map[GateKind]string{
		GateS: "S", GateT: "T", GateRX: "RX", GateCZ: "CZ", GateSWAP: "SWAP",
	} {
		if got := k.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestParseCircuitErrorMessagesNameLines(t *testing.T) {
	_, err := ParseCircuit("qreg q[1];\nh q[0];\nbogus q[0];")
	if err == nil {
		t.Fatal("bogus gate succeeded")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name line 3", err)
	}
}
