package qsim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSGatePhase(t *testing.T) {
	s, _ := NewState(1)
	_ = s.X(0)
	_ = s.S(0)
	// S|1⟩ = i|1⟩.
	if cmplx.Abs(s.Amplitudes()[1]-complex(0, 1)) > eps {
		t.Errorf("S|1⟩ = %v, want i", s.Amplitudes()[1])
	}
}

func TestTSquaredEqualsS(t *testing.T) {
	a, _ := NewState(1)
	_ = a.X(0)
	_ = a.T(0)
	_ = a.T(0)
	b, _ := NewState(1)
	_ = b.X(0)
	_ = b.S(0)
	for i := range a.Amplitudes() {
		if cmplx.Abs(a.Amplitudes()[i]-b.Amplitudes()[i]) > eps {
			t.Fatalf("T² != S at amplitude %d", i)
		}
	}
}

func TestRXFlipsAtPi(t *testing.T) {
	s, _ := NewState(1)
	_ = s.RX(0, math.Pi)
	if math.Abs(s.Probability(1)-1) > eps {
		t.Errorf("RX(pi): P(1) = %v, want 1", s.Probability(1))
	}
}

func TestSWAPExchangesQubits(t *testing.T) {
	s, _ := NewState(2)
	_ = s.X(0) // |01⟩ (qubit 0 set)
	if err := s.SWAP(0, 1); err != nil {
		t.Fatalf("SWAP: %v", err)
	}
	// Now qubit 1 set: basis index 2.
	if math.Abs(s.Probability(2)-1) > eps {
		t.Errorf("after SWAP P(10) = %v, want 1", s.Probability(2))
	}
	if err := s.SWAP(0, 0); err == nil {
		t.Error("SWAP(0,0) succeeded")
	}
	if err := s.SWAP(0, 9); err == nil {
		t.Error("SWAP out of range succeeded")
	}
}

func TestSWAPInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		s, _ := NewState(n)
		for i := 0; i < 10; i++ {
			_ = s.RY(r.Intn(n), r.Float64()*math.Pi)
		}
		before := s.Clone()
		a := r.Intn(n)
		b := r.Intn(n - 1)
		if b >= a {
			b++
		}
		_ = s.SWAP(a, b)
		_ = s.SWAP(a, b)
		for i := range s.amp {
			if cmplx.Abs(s.amp[i]-before.amp[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCZSymmetricAndConditional(t *testing.T) {
	s, _ := NewState(2)
	_ = s.H(0)
	_ = s.H(1)
	if err := s.CZ(0, 1); err != nil {
		t.Fatalf("CZ: %v", err)
	}
	// Only |11⟩ picks up the minus sign.
	if real(s.Amplitudes()[3]) > 0 {
		t.Errorf("CZ did not negate |11⟩: %v", s.Amplitudes()[3])
	}
	if real(s.Amplitudes()[0]) < 0 || real(s.Amplitudes()[1]) < 0 || real(s.Amplitudes()[2]) < 0 {
		t.Error("CZ affected non-|11⟩ amplitudes")
	}
	if err := s.CZ(1, 1); err == nil {
		t.Error("CZ(1,1) succeeded")
	}
}

func TestCZEqualsHadamardConjugatedCX(t *testing.T) {
	// CZ = (I⊗H) CX (I⊗H)
	mk := func() *State {
		s, _ := NewState(2)
		_ = s.RY(0, 0.7)
		_ = s.RY(1, 1.3)
		_ = s.CX(0, 1)
		return s
	}
	a := mk()
	_ = a.CZ(0, 1)
	b := mk()
	_ = b.H(1)
	_ = b.CX(0, 1)
	_ = b.H(1)
	for i := range a.amp {
		if cmplx.Abs(a.amp[i]-b.amp[i]) > 1e-12 {
			t.Fatalf("CZ != H·CX·H at amplitude %d: %v vs %v", i, a.amp[i], b.amp[i])
		}
	}
}

func TestCRYConditionalRotation(t *testing.T) {
	// Control clear: no rotation.
	s, _ := NewState(2)
	if err := s.CRY(0, 1, math.Pi); err != nil {
		t.Fatalf("CRY: %v", err)
	}
	if math.Abs(s.Probability(0)-1) > eps {
		t.Errorf("CRY acted with clear control: P(00) = %v", s.Probability(0))
	}
	// Control set: full flip of target.
	s2, _ := NewState(2)
	_ = s2.X(0)
	_ = s2.CRY(0, 1, math.Pi)
	if math.Abs(s2.Probability(3)-1) > eps {
		t.Errorf("CRY(pi) with set control: P(11) = %v, want 1", s2.Probability(3))
	}
	if err := s2.CRY(1, 1, 0.5); err == nil {
		t.Error("CRY with control==target succeeded")
	}
}

func TestExtendedGatesPreserveNorm(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)
		s, _ := NewState(n)
		for i := 0; i < 25; i++ {
			q := r.Intn(n)
			q2 := r.Intn(n - 1)
			if q2 >= q {
				q2++
			}
			switch r.Intn(6) {
			case 0:
				_ = s.S(q)
			case 1:
				_ = s.T(q)
			case 2:
				_ = s.RX(q, r.Float64()*2*math.Pi)
			case 3:
				_ = s.SWAP(q, q2)
			case 4:
				_ = s.CZ(q, q2)
			case 5:
				_ = s.CRY(q, q2, r.Float64()*2*math.Pi)
			}
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMeasureQubitCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Bell state: measuring qubit 0 determines qubit 1.
	for trial := 0; trial < 20; trial++ {
		s, _ := NewState(2)
		_ = s.H(0)
		_ = s.CX(0, 1)
		bit, err := s.MeasureQubit(rng, 0)
		if err != nil {
			t.Fatalf("MeasureQubit: %v", err)
		}
		// The state must now be |bb⟩ exactly.
		want := 0
		if bit == 1 {
			want = 3
		}
		if math.Abs(s.Probability(want)-1) > 1e-9 {
			t.Fatalf("post-measurement state not collapsed: P(%d) = %v", want, s.Probability(want))
		}
		if math.Abs(s.Norm()-1) > 1e-9 {
			t.Fatalf("post-measurement norm = %v", s.Norm())
		}
	}
	s, _ := NewState(1)
	if _, err := s.MeasureQubit(rng, 5); err == nil {
		t.Error("out-of-range measurement succeeded")
	}
}

func TestMeasureQubitStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ones := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		s, _ := NewState(1)
		_ = s.RY(0, math.Pi/3) // P(1) = sin²(π/6) = 0.25
		bit, err := s.MeasureQubit(rng, 0)
		if err != nil {
			t.Fatalf("MeasureQubit: %v", err)
		}
		ones += bit
	}
	p1 := float64(ones) / trials
	if math.Abs(p1-0.25) > 0.04 {
		t.Errorf("measured P(1) = %v, want ~0.25", p1)
	}
}
