package qsim

import (
	"fmt"
	"math"
	"strings"
)

// PauliTerm is one weighted Pauli string of a qubit Hamiltonian, e.g.
// 0.18 * "XX". Character i of Paulis acts on qubit i; valid characters are
// I, X, Y, Z.
type PauliTerm struct {
	Coefficient float64
	Paulis      string
}

// Hamiltonian is a sum of Pauli terms.
type Hamiltonian struct {
	NumQubits int
	Terms     []PauliTerm
}

// Validate checks term widths and characters.
func (h *Hamiltonian) Validate() error {
	if h.NumQubits <= 0 {
		return fmt.Errorf("qsim: hamiltonian has %d qubits", h.NumQubits)
	}
	for i, t := range h.Terms {
		if len(t.Paulis) != h.NumQubits {
			return fmt.Errorf("qsim: term %d width %d, want %d", i, len(t.Paulis), h.NumQubits)
		}
		if x := strings.IndexFunc(t.Paulis, func(r rune) bool {
			return r != 'I' && r != 'X' && r != 'Y' && r != 'Z'
		}); x >= 0 {
			return fmt.Errorf("qsim: term %d has invalid Pauli %q", i, t.Paulis[x])
		}
	}
	return nil
}

// H2Hamiltonian returns the two-qubit Hamiltonian of molecular hydrogen at
// equilibrium bond length (0.7414 Å) in the reduced parity mapping, with
// the coefficients of O'Malley et al. (2016). Its ground-state energy is
// approximately -1.8573 Hartree (electronic part).
func H2Hamiltonian() *Hamiltonian {
	return &Hamiltonian{
		NumQubits: 2,
		Terms: []PauliTerm{
			{Coefficient: -1.052373245772859, Paulis: "II"},
			{Coefficient: 0.39793742484318045, Paulis: "IZ"},
			{Coefficient: -0.39793742484318045, Paulis: "ZI"},
			{Coefficient: -0.01128010425623538, Paulis: "ZZ"},
			{Coefficient: 0.18093119978423156, Paulis: "XX"},
		},
	}
}

// applyPauliString returns P|ψ⟩ for a Pauli string.
func applyPauliString(s *State, paulis string) (*State, error) {
	out := s.Clone()
	for q, p := range paulis {
		var err error
		switch p {
		case 'I':
		case 'X':
			err = out.X(q)
		case 'Y':
			err = out.Y(q)
		case 'Z':
			err = out.Z(q)
		default:
			err = fmt.Errorf("qsim: invalid Pauli %q", p)
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Expectation returns ⟨ψ|H|ψ⟩.
func (h *Hamiltonian) Expectation(s *State) (float64, error) {
	if err := h.Validate(); err != nil {
		return 0, err
	}
	if s.NumQubits() != h.NumQubits {
		return 0, fmt.Errorf("qsim: state width %d, hamiltonian width %d", s.NumQubits(), h.NumQubits)
	}
	var energy float64
	for _, t := range h.Terms {
		phi, err := applyPauliString(s, t.Paulis)
		if err != nil {
			return 0, err
		}
		ip, err := InnerProduct(s, phi)
		if err != nil {
			return 0, err
		}
		energy += t.Coefficient * real(ip)
	}
	return energy, nil
}

// Ansatz builds the hardware-efficient variational circuit used by the VQE
// kernel: layers of per-qubit RY rotations interleaved with a CX
// entangling ladder. The parameter count is NumQubits × (Depth+1).
type Ansatz struct {
	NumQubits int
	Depth     int
}

// NumParams returns the number of variational parameters.
func (a Ansatz) NumParams() int { return a.NumQubits * (a.Depth + 1) }

// Circuit materializes the ansatz for a parameter vector.
func (a Ansatz) Circuit(params []float64) (*Circuit, error) {
	if len(params) != a.NumParams() {
		return nil, fmt.Errorf("qsim: ansatz wants %d params, got %d", a.NumParams(), len(params))
	}
	c, err := NewCircuit(a.NumQubits)
	if err != nil {
		return nil, err
	}
	idx := 0
	for q := 0; q < a.NumQubits; q++ {
		c.Append(Gate{Kind: GateRY, Q: q, Theta: params[idx]})
		idx++
	}
	for d := 0; d < a.Depth; d++ {
		for q := 0; q < a.NumQubits-1; q++ {
			c.Append(Gate{Kind: GateCX, Control: q, Q: q + 1})
		}
		for q := 0; q < a.NumQubits; q++ {
			c.Append(Gate{Kind: GateRY, Q: q, Theta: params[idx]})
			idx++
		}
	}
	return c, nil
}

// VQE performs a variational quantum eigensolver run: it minimizes the
// expectation of a Hamiltonian over an ansatz with parameter-shift
// gradient descent — the paper's single-point electronic-structure
// calculation (§5.6.4).
type VQE struct {
	Hamiltonian *Hamiltonian
	Ansatz      Ansatz
	// LearningRate for gradient descent. Defaults to 0.2 in Minimize.
	LearningRate float64

	evaluations int
}

// Energy evaluates the expectation for one parameter vector (one use of
// the "estimator primitive").
func (v *VQE) Energy(params []float64) (float64, error) {
	c, err := v.Ansatz.Circuit(params)
	if err != nil {
		return 0, err
	}
	s, err := c.Run()
	if err != nil {
		return 0, err
	}
	v.evaluations++
	return v.Hamiltonian.Expectation(s)
}

// Evaluations returns the number of estimator calls performed so far.
func (v *VQE) Evaluations() int { return v.evaluations }

// Gradient computes the exact parameter-shift gradient of the energy.
func (v *VQE) Gradient(params []float64) ([]float64, error) {
	grad := make([]float64, len(params))
	shifted := make([]float64, len(params))
	copy(shifted, params)
	for i := range params {
		shifted[i] = params[i] + math.Pi/2
		plus, err := v.Energy(shifted)
		if err != nil {
			return nil, err
		}
		shifted[i] = params[i] - math.Pi/2
		minus, err := v.Energy(shifted)
		if err != nil {
			return nil, err
		}
		shifted[i] = params[i]
		grad[i] = (plus - minus) / 2
	}
	return grad, nil
}

// Minimize runs iters gradient-descent iterations from the given starting
// parameters and returns the best energy found and the parameters that
// produced it.
func (v *VQE) Minimize(start []float64, iters int) (float64, []float64, error) {
	lr := v.LearningRate
	if lr <= 0 {
		lr = 0.2
	}
	params := make([]float64, len(start))
	copy(params, start)
	best, err := v.Energy(params)
	if err != nil {
		return 0, nil, err
	}
	bestParams := make([]float64, len(params))
	copy(bestParams, params)
	for i := 0; i < iters; i++ {
		grad, err := v.Gradient(params)
		if err != nil {
			return 0, nil, fmt.Errorf("vqe iteration %d: %w", i, err)
		}
		for j := range params {
			params[j] -= lr * grad[j]
		}
		e, err := v.Energy(params)
		if err != nil {
			return 0, nil, fmt.Errorf("vqe iteration %d: %w", i, err)
		}
		if e < best {
			best = e
			copy(bestParams, params)
		}
	}
	return best, bestParams, nil
}
