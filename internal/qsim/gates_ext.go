package qsim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// S applies the phase gate (√Z) to qubit q.
func (s *State) S(q int) error {
	return s.apply1Q(q, 1, 0, 0, complex(0, 1))
}

// T applies the π/8 gate (√S) to qubit q.
func (s *State) T(q int) error {
	return s.apply1Q(q, 1, 0, 0, cmplx.Exp(complex(0, 0.7853981633974483)))
}

// RX applies a rotation around X by angle theta to qubit q.
func (s *State) RX(q int, theta float64) error {
	cos := complex(math.Cos(theta/2), 0)
	isin := complex(0, -math.Sin(theta/2))
	return s.apply1Q(q, cos, isin, isin, cos)
}

// SWAP exchanges the states of qubits a and b.
func (s *State) SWAP(a, b int) error {
	if err := s.checkQubit(a); err != nil {
		return err
	}
	if err := s.checkQubit(b); err != nil {
		return err
	}
	if a == b {
		return fmt.Errorf("qsim: SWAP with identical qubits (%d)", a)
	}
	abit := 1 << uint(a)
	bbit := 1 << uint(b)
	for i := 0; i < len(s.amp); i++ {
		// Swap amplitudes where qubit a is set and b is clear.
		if i&abit != 0 && i&bbit == 0 {
			j := (i &^ abit) | bbit
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
	return nil
}

// CZ applies a controlled-Z between qubits a and b (symmetric).
func (s *State) CZ(a, b int) error {
	if err := s.checkQubit(a); err != nil {
		return err
	}
	if err := s.checkQubit(b); err != nil {
		return err
	}
	if a == b {
		return fmt.Errorf("qsim: CZ with identical qubits (%d)", a)
	}
	mask := (1 << uint(a)) | (1 << uint(b))
	for i := 0; i < len(s.amp); i++ {
		if i&mask == mask {
			s.amp[i] = -s.amp[i]
		}
	}
	return nil
}

// CRY applies a controlled RY(theta) with the given control and target.
func (s *State) CRY(control, target int, theta float64) error {
	if err := s.checkQubit(control); err != nil {
		return err
	}
	if err := s.checkQubit(target); err != nil {
		return err
	}
	if control == target {
		return fmt.Errorf("qsim: CRY control equals target (%d)", control)
	}
	cos := complex(math.Cos(theta/2), 0)
	sin := complex(math.Sin(theta/2), 0)
	cbit := 1 << uint(control)
	tbit := 1 << uint(target)
	for i := 0; i < len(s.amp); i++ {
		if i&cbit == 0 || i&tbit != 0 {
			continue
		}
		j := i | tbit
		a0, a1 := s.amp[i], s.amp[j]
		s.amp[i] = cos*a0 - sin*a1
		s.amp[j] = sin*a0 + cos*a1
	}
	return nil
}

// MeasureQubit measures a single qubit in the computational basis,
// collapsing the state, and returns the observed bit.
func (s *State) MeasureQubit(rng *rand.Rand, q int) (int, error) {
	if err := s.checkQubit(q); err != nil {
		return 0, err
	}
	bit := 1 << uint(q)
	var p1 float64
	for i, a := range s.amp {
		if i&bit != 0 {
			p1 += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	// Collapse and renormalize.
	var norm float64
	for i := range s.amp {
		keep := (outcome == 1) == (i&bit != 0)
		if !keep {
			s.amp[i] = 0
			continue
		}
		norm += real(s.amp[i])*real(s.amp[i]) + imag(s.amp[i])*imag(s.amp[i])
	}
	if norm == 0 {
		return 0, fmt.Errorf("qsim: measurement collapsed to zero norm")
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for i := range s.amp {
		s.amp[i] *= scale
	}
	return outcome, nil
}
