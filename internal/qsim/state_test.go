package qsim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func TestNewStateValidation(t *testing.T) {
	if _, err := NewState(0); err == nil {
		t.Error("NewState(0) succeeded")
	}
	if _, err := NewState(MaxQubits + 1); err == nil {
		t.Error("NewState(too many) succeeded")
	}
	s, err := NewState(3)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	if s.NumQubits() != 3 || len(s.Amplitudes()) != 8 {
		t.Errorf("state dims wrong")
	}
	if s.Probability(0) != 1 {
		t.Errorf("initial state not |000⟩")
	}
}

func TestHadamardCreatesSuperposition(t *testing.T) {
	s, _ := NewState(1)
	if err := s.H(0); err != nil {
		t.Fatalf("H: %v", err)
	}
	if math.Abs(s.Probability(0)-0.5) > eps || math.Abs(s.Probability(1)-0.5) > eps {
		t.Errorf("probabilities after H: %v, %v", s.Probability(0), s.Probability(1))
	}
}

func TestHadamardSelfInverse(t *testing.T) {
	s, _ := NewState(2)
	_ = s.H(0)
	_ = s.H(1)
	_ = s.H(0)
	_ = s.H(1)
	if math.Abs(s.Probability(0)-1) > eps {
		t.Errorf("HH != I: P(00) = %v", s.Probability(0))
	}
}

func TestXTruthTable(t *testing.T) {
	s, _ := NewState(2)
	_ = s.X(1)
	// qubit 1 set: basis index 0b10 = 2.
	if math.Abs(s.Probability(2)-1) > eps {
		t.Errorf("X on qubit 1: P(10) = %v, want 1", s.Probability(2))
	}
}

func TestBellState(t *testing.T) {
	s, _ := NewState(2)
	_ = s.H(0)
	if err := s.CX(0, 1); err != nil {
		t.Fatalf("CX: %v", err)
	}
	// (|00⟩ + |11⟩)/√2
	if math.Abs(s.Probability(0)-0.5) > eps {
		t.Errorf("P(00) = %v, want 0.5", s.Probability(0))
	}
	if math.Abs(s.Probability(3)-0.5) > eps {
		t.Errorf("P(11) = %v, want 0.5", s.Probability(3))
	}
	if s.Probability(1) > eps || s.Probability(2) > eps {
		t.Errorf("P(01)=%v P(10)=%v, want 0", s.Probability(1), s.Probability(2))
	}
}

func TestCXValidation(t *testing.T) {
	s, _ := NewState(2)
	if err := s.CX(0, 0); err == nil {
		t.Error("CX with control==target succeeded")
	}
	if err := s.CX(0, 5); err == nil {
		t.Error("CX with out-of-range target succeeded")
	}
	if err := s.H(9); err == nil {
		t.Error("H on out-of-range qubit succeeded")
	}
}

func TestRYRotation(t *testing.T) {
	s, _ := NewState(1)
	_ = s.RY(0, math.Pi) // |0⟩ -> |1⟩
	if math.Abs(s.Probability(1)-1) > eps {
		t.Errorf("RY(pi): P(1) = %v, want 1", s.Probability(1))
	}
	s2, _ := NewState(1)
	_ = s2.RY(0, math.Pi/2)
	if math.Abs(s2.Probability(0)-0.5) > eps {
		t.Errorf("RY(pi/2): P(0) = %v, want 0.5", s2.Probability(0))
	}
}

func TestRZPhaseOnly(t *testing.T) {
	s, _ := NewState(1)
	_ = s.H(0)
	before0, before1 := s.Probability(0), s.Probability(1)
	_ = s.RZ(0, 1.234)
	if math.Abs(s.Probability(0)-before0) > eps || math.Abs(s.Probability(1)-before1) > eps {
		t.Error("RZ changed measurement probabilities")
	}
}

func TestYGate(t *testing.T) {
	s, _ := NewState(1)
	_ = s.Y(0)
	// Y|0⟩ = i|1⟩.
	if cmplx.Abs(s.Amplitudes()[1]-complex(0, 1)) > eps {
		t.Errorf("Y|0⟩ amp = %v, want i", s.Amplitudes()[1])
	}
}

func TestZGate(t *testing.T) {
	s, _ := NewState(1)
	_ = s.X(0)
	_ = s.Z(0)
	if cmplx.Abs(s.Amplitudes()[1]-complex(-1, 0)) > eps {
		t.Errorf("ZX|0⟩ amp = %v, want -1", s.Amplitudes()[1])
	}
}

// TestUnitarityProperty: random circuits preserve the norm.
func TestUnitarityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		s, _ := NewState(n)
		for i := 0; i < 30; i++ {
			q := r.Intn(n)
			switch r.Intn(6) {
			case 0:
				_ = s.H(q)
			case 1:
				_ = s.X(q)
			case 2:
				_ = s.RY(q, r.Float64()*2*math.Pi)
			case 3:
				_ = s.RZ(q, r.Float64()*2*math.Pi)
			case 4:
				_ = s.Y(q)
			case 5:
				q2 := r.Intn(n - 1)
				if q2 >= q {
					q2++
				}
				_ = s.CX(q, q2)
			}
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMeasureAllDistribution(t *testing.T) {
	s, _ := NewState(1)
	_ = s.H(0)
	rng := rand.New(rand.NewSource(11))
	hist := s.Sample(rng, 10000)
	p1 := float64(hist[1]) / 10000
	if math.Abs(p1-0.5) > 0.03 {
		t.Errorf("sampled P(1) = %v, want ~0.5", p1)
	}
}

func TestInnerProduct(t *testing.T) {
	a, _ := NewState(2)
	b, _ := NewState(2)
	ip, err := InnerProduct(a, b)
	if err != nil {
		t.Fatalf("InnerProduct: %v", err)
	}
	if cmplx.Abs(ip-1) > eps {
		t.Errorf("⟨0|0⟩ = %v, want 1", ip)
	}
	_ = b.X(0)
	ip, _ = InnerProduct(a, b)
	if cmplx.Abs(ip) > eps {
		t.Errorf("⟨0|1⟩ = %v, want 0", ip)
	}
	c, _ := NewState(3)
	if _, err := InnerProduct(a, c); err == nil {
		t.Error("mismatched widths succeeded")
	}
}

func TestCloneIndependent(t *testing.T) {
	a, _ := NewState(1)
	b := a.Clone()
	_ = b.X(0)
	if a.Probability(1) != 0 {
		t.Error("Clone shares amplitudes")
	}
}
