package qsim

import (
	"math"
	"math/rand"
	"testing"
)

func TestCircuitRunBell(t *testing.T) {
	c, err := NewCircuit(2)
	if err != nil {
		t.Fatalf("NewCircuit: %v", err)
	}
	c.Append(
		Gate{Kind: GateH, Q: 0},
		Gate{Kind: GateCX, Control: 0, Q: 1},
	)
	s, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(s.Probability(0)-0.5) > eps || math.Abs(s.Probability(3)-0.5) > eps {
		t.Errorf("Bell circuit probabilities wrong: %v %v", s.Probability(0), s.Probability(3))
	}
}

func TestCircuitValidation(t *testing.T) {
	if _, err := NewCircuit(0); err == nil {
		t.Error("NewCircuit(0) succeeded")
	}
	c, _ := NewCircuit(2)
	c.Append(Gate{Kind: GateKind(99), Q: 0})
	if _, err := c.Run(); err == nil {
		t.Error("unknown gate kind succeeded")
	}
	c2, _ := NewCircuit(2)
	s3, _ := NewState(3)
	if err := c2.Apply(s3); err == nil {
		t.Error("width mismatch succeeded")
	}
}

func TestGateKindString(t *testing.T) {
	names := map[GateKind]string{
		GateH: "H", GateX: "X", GateY: "Y", GateZ: "Z",
		GateRY: "RY", GateRZ: "RZ", GateCX: "CX", GateKind(77): "Gate(77)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestAmplitudeOps(t *testing.T) {
	c, _ := NewCircuit(3)
	c.Append(Gate{Kind: GateH, Q: 0}, Gate{Kind: GateX, Q: 1})
	if got := c.AmplitudeOps(); got != 16 {
		t.Errorf("AmplitudeOps = %v, want 16", got)
	}
}

func TestRandomCXCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := RandomCXCircuit(rng, 4, 50)
	if err != nil {
		t.Fatalf("RandomCXCircuit: %v", err)
	}
	if len(c.Gates) != 54 { // 4 H + 50 CX
		t.Errorf("gate count = %d, want 54", len(c.Gates))
	}
	for _, g := range c.Gates[4:] {
		if g.Kind != GateCX {
			t.Fatalf("non-CX gate %v in body", g.Kind)
		}
		if g.Control == g.Q {
			t.Fatal("CX with control == target")
		}
	}
	if _, err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := RandomCXCircuit(rng, 1, 5); err == nil {
		t.Error("1-qubit CX circuit succeeded")
	}
}

func TestHamiltonianValidate(t *testing.T) {
	h := H2Hamiltonian()
	if err := h.Validate(); err != nil {
		t.Errorf("H2 hamiltonian invalid: %v", err)
	}
	bad := &Hamiltonian{NumQubits: 2, Terms: []PauliTerm{{1, "XQZ"}}}
	if err := bad.Validate(); err == nil {
		t.Error("wrong-width term succeeded")
	}
	bad2 := &Hamiltonian{NumQubits: 3, Terms: []PauliTerm{{1, "XQZ"}}}
	if err := bad2.Validate(); err == nil {
		t.Error("invalid Pauli character succeeded")
	}
	bad3 := &Hamiltonian{NumQubits: 0}
	if err := bad3.Validate(); err == nil {
		t.Error("zero-qubit hamiltonian succeeded")
	}
}

func TestExpectationZBasis(t *testing.T) {
	// ⟨0|Z|0⟩ = 1, ⟨1|Z|1⟩ = -1.
	h := &Hamiltonian{NumQubits: 1, Terms: []PauliTerm{{1, "Z"}}}
	s0, _ := NewState(1)
	e, err := h.Expectation(s0)
	if err != nil {
		t.Fatalf("Expectation: %v", err)
	}
	if math.Abs(e-1) > eps {
		t.Errorf("⟨0|Z|0⟩ = %v, want 1", e)
	}
	s1, _ := NewState(1)
	_ = s1.X(0)
	e, _ = h.Expectation(s1)
	if math.Abs(e+1) > eps {
		t.Errorf("⟨1|Z|1⟩ = %v, want -1", e)
	}
}

func TestExpectationXBasis(t *testing.T) {
	// ⟨+|X|+⟩ = 1.
	h := &Hamiltonian{NumQubits: 1, Terms: []PauliTerm{{1, "X"}}}
	s, _ := NewState(1)
	_ = s.H(0)
	e, err := h.Expectation(s)
	if err != nil {
		t.Fatalf("Expectation: %v", err)
	}
	if math.Abs(e-1) > eps {
		t.Errorf("⟨+|X|+⟩ = %v, want 1", e)
	}
}

func TestExpectationWidthMismatch(t *testing.T) {
	h := H2Hamiltonian()
	s, _ := NewState(3)
	if _, err := h.Expectation(s); err == nil {
		t.Error("width mismatch succeeded")
	}
}

func TestAnsatzParamCount(t *testing.T) {
	a := Ansatz{NumQubits: 2, Depth: 2}
	if got := a.NumParams(); got != 6 {
		t.Errorf("NumParams = %d, want 6", got)
	}
	if _, err := a.Circuit(make([]float64, 3)); err == nil {
		t.Error("wrong param count succeeded")
	}
	c, err := a.Circuit(make([]float64, 6))
	if err != nil {
		t.Fatalf("Circuit: %v", err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestVQEFindsH2GroundState is the core correctness test for the VQE
// experiment: the optimizer must converge to the known H2 ground-state
// energy of approximately -1.8573 Hartree.
func TestVQEFindsH2GroundState(t *testing.T) {
	v := &VQE{
		Hamiltonian:  H2Hamiltonian(),
		Ansatz:       Ansatz{NumQubits: 2, Depth: 2},
		LearningRate: 0.3,
	}
	rng := rand.New(rand.NewSource(3))
	start := make([]float64, v.Ansatz.NumParams())
	for i := range start {
		start[i] = rng.Float64() * 0.5
	}
	energy, params, err := v.Minimize(start, 60)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	const want = -1.8573
	if math.Abs(energy-want) > 0.01 {
		t.Errorf("VQE energy = %v, want ~%v", energy, want)
	}
	if len(params) != v.Ansatz.NumParams() {
		t.Errorf("returned %d params", len(params))
	}
	if v.Evaluations() == 0 {
		t.Error("no estimator evaluations recorded")
	}
}

// TestVQEVariationalPrinciple: any parameter vector gives energy >= ground
// state energy.
func TestVQEVariationalPrinciple(t *testing.T) {
	v := &VQE{Hamiltonian: H2Hamiltonian(), Ansatz: Ansatz{NumQubits: 2, Depth: 1}}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 20; i++ {
		params := make([]float64, v.Ansatz.NumParams())
		for j := range params {
			params[j] = rng.Float64() * 2 * math.Pi
		}
		e, err := v.Energy(params)
		if err != nil {
			t.Fatalf("Energy: %v", err)
		}
		if e < -1.8574 {
			t.Errorf("energy %v below ground state", e)
		}
	}
}

func TestVQEGradientMatchesFiniteDifference(t *testing.T) {
	v := &VQE{Hamiltonian: H2Hamiltonian(), Ansatz: Ansatz{NumQubits: 2, Depth: 1}}
	params := []float64{0.3, -0.2, 0.7, 0.1}
	grad, err := v.Gradient(params)
	if err != nil {
		t.Fatalf("Gradient: %v", err)
	}
	const h = 1e-6
	for i := range params {
		p := make([]float64, len(params))
		copy(p, params)
		p[i] += h
		ep, _ := v.Energy(p)
		p[i] -= 2 * h
		em, _ := v.Energy(p)
		numeric := (ep - em) / (2 * h)
		if math.Abs(numeric-grad[i]) > 1e-5 {
			t.Errorf("param %d: parameter-shift %v vs finite-diff %v", i, grad[i], numeric)
		}
	}
}
