// Package qsim is a state-vector quantum circuit simulator: the substrate
// behind the paper's quantum-computing kernel (Fig. 14 QC) and the VQE
// electronic-structure experiment (Fig. 17). It implements genuine quantum
// state evolution over complex128 amplitudes — applying gates, sampling
// measurements, and evaluating Pauli-operator expectation values — rather
// than mocking the Qiskit Aer backends the paper calls into.
package qsim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// MaxQubits bounds state size (2^25 amplitudes = 512 MiB of complex128).
const MaxQubits = 25

// State is the state vector of an n-qubit register. Qubit 0 is the least
// significant bit of the basis index.
type State struct {
	n   int
	amp []complex128
}

// NewState creates an n-qubit register initialized to |0...0⟩.
func NewState(n int) (*State, error) {
	if n <= 0 || n > MaxQubits {
		return nil, fmt.Errorf("qsim: qubit count %d outside [1, %d]", n, MaxQubits)
	}
	amp := make([]complex128, 1<<uint(n))
	amp[0] = 1
	return &State{n: n, amp: amp}, nil
}

// NumQubits returns the register width.
func (s *State) NumQubits() int { return s.n }

// Amplitudes returns the underlying amplitude slice (shared storage).
func (s *State) Amplitudes() []complex128 { return s.amp }

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	amp := make([]complex128, len(s.amp))
	copy(amp, s.amp)
	return &State{n: s.n, amp: amp}
}

// Norm returns the L2 norm of the state (1 for a valid state).
func (s *State) Norm() float64 {
	var sum float64
	for _, a := range s.amp {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

// Probability returns the probability of measuring basis state idx.
func (s *State) Probability(idx int) float64 {
	a := s.amp[idx]
	return real(a)*real(a) + imag(a)*imag(a)
}

// checkQubit validates a qubit index.
func (s *State) checkQubit(q int) error {
	if q < 0 || q >= s.n {
		return fmt.Errorf("qsim: qubit %d outside [0, %d)", q, s.n)
	}
	return nil
}

// apply1Q applies the 2x2 unitary {{a,b},{c,d}} to qubit q.
func (s *State) apply1Q(q int, a, b, c, d complex128) error {
	if err := s.checkQubit(q); err != nil {
		return err
	}
	bit := 1 << uint(q)
	for i := 0; i < len(s.amp); i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		a0, a1 := s.amp[i], s.amp[j]
		s.amp[i] = a*a0 + b*a1
		s.amp[j] = c*a0 + d*a1
	}
	return nil
}

// Invsqrt2 is 1/√2, the Hadamard amplitude.
const invSqrt2 = 0.7071067811865476

// H applies a Hadamard gate to qubit q.
func (s *State) H(q int) error {
	return s.apply1Q(q, complex(invSqrt2, 0), complex(invSqrt2, 0),
		complex(invSqrt2, 0), complex(-invSqrt2, 0))
}

// X applies a Pauli-X (NOT) gate to qubit q.
func (s *State) X(q int) error {
	return s.apply1Q(q, 0, 1, 1, 0)
}

// Y applies a Pauli-Y gate to qubit q.
func (s *State) Y(q int) error {
	return s.apply1Q(q, 0, complex(0, -1), complex(0, 1), 0)
}

// Z applies a Pauli-Z gate to qubit q.
func (s *State) Z(q int) error {
	return s.apply1Q(q, 1, 0, 0, -1)
}

// RY applies a rotation around Y by angle theta to qubit q.
func (s *State) RY(q int, theta float64) error {
	cos := complex(math.Cos(theta/2), 0)
	sin := complex(math.Sin(theta/2), 0)
	return s.apply1Q(q, cos, -sin, sin, cos)
}

// RZ applies a rotation around Z by angle theta to qubit q.
func (s *State) RZ(q int, theta float64) error {
	e0 := cmplx.Exp(complex(0, -theta/2))
	e1 := cmplx.Exp(complex(0, theta/2))
	return s.apply1Q(q, e0, 0, 0, e1)
}

// CX applies a controlled-NOT with the given control and target qubits.
func (s *State) CX(control, target int) error {
	if err := s.checkQubit(control); err != nil {
		return err
	}
	if err := s.checkQubit(target); err != nil {
		return err
	}
	if control == target {
		return fmt.Errorf("qsim: CX control equals target (%d)", control)
	}
	cbit := 1 << uint(control)
	tbit := 1 << uint(target)
	for i := 0; i < len(s.amp); i++ {
		if i&cbit != 0 && i&tbit == 0 {
			j := i | tbit
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
	return nil
}

// MeasureAll samples a basis state from the state's distribution using
// rng, collapsing is not performed (the state is unchanged).
func (s *State) MeasureAll(rng *rand.Rand) int {
	r := rng.Float64()
	var cum float64
	for i := range s.amp {
		cum += s.Probability(i)
		if r < cum {
			return i
		}
	}
	return len(s.amp) - 1
}

// Sample draws shots measurement outcomes and returns a histogram keyed by
// basis-state index.
func (s *State) Sample(rng *rand.Rand, shots int) map[int]int {
	out := make(map[int]int)
	for i := 0; i < shots; i++ {
		out[s.MeasureAll(rng)]++
	}
	return out
}

// InnerProduct returns ⟨a|b⟩.
func InnerProduct(a, b *State) (complex128, error) {
	if a.n != b.n {
		return 0, fmt.Errorf("qsim: register widths differ (%d vs %d)", a.n, b.n)
	}
	var sum complex128
	for i := range a.amp {
		sum += cmplx.Conj(a.amp[i]) * b.amp[i]
	}
	return sum, nil
}
