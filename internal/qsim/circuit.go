package qsim

import (
	"fmt"
	"math/rand"
)

// GateKind identifies a gate type in a circuit description.
type GateKind int

// Supported gate kinds.
const (
	GateH GateKind = iota + 1
	GateX
	GateY
	GateZ
	GateS
	GateT
	GateRX
	GateRY
	GateRZ
	GateCX
	GateCZ
	GateSWAP
)

// String returns the gate mnemonic.
func (g GateKind) String() string {
	switch g {
	case GateH:
		return "H"
	case GateX:
		return "X"
	case GateY:
		return "Y"
	case GateZ:
		return "Z"
	case GateS:
		return "S"
	case GateT:
		return "T"
	case GateRX:
		return "RX"
	case GateRY:
		return "RY"
	case GateRZ:
		return "RZ"
	case GateCX:
		return "CX"
	case GateCZ:
		return "CZ"
	case GateSWAP:
		return "SWAP"
	default:
		return fmt.Sprintf("Gate(%d)", int(g))
	}
}

// Gate is one operation in a circuit.
type Gate struct {
	Kind GateKind
	// Q is the target qubit.
	Q int
	// Control is the control qubit for CX.
	Control int
	// Theta is the rotation angle for RY/RZ.
	Theta float64
}

// Circuit is an ordered gate list over a fixed register width.
type Circuit struct {
	NumQubits int
	Gates     []Gate
}

// NewCircuit creates an empty circuit on n qubits.
func NewCircuit(n int) (*Circuit, error) {
	if n <= 0 || n > MaxQubits {
		return nil, fmt.Errorf("qsim: qubit count %d outside [1, %d]", n, MaxQubits)
	}
	return &Circuit{NumQubits: n}, nil
}

// Append adds gates to the circuit.
func (c *Circuit) Append(gates ...Gate) { c.Gates = append(c.Gates, gates...) }

// Run executes the circuit on a fresh |0...0⟩ state and returns it.
func (c *Circuit) Run() (*State, error) {
	s, err := NewState(c.NumQubits)
	if err != nil {
		return nil, err
	}
	if err := c.Apply(s); err != nil {
		return nil, err
	}
	return s, nil
}

// Apply executes the circuit's gates on an existing state.
func (c *Circuit) Apply(s *State) error {
	if s.NumQubits() != c.NumQubits {
		return fmt.Errorf("qsim: circuit width %d, state width %d", c.NumQubits, s.NumQubits())
	}
	for i, g := range c.Gates {
		var err error
		switch g.Kind {
		case GateH:
			err = s.H(g.Q)
		case GateX:
			err = s.X(g.Q)
		case GateY:
			err = s.Y(g.Q)
		case GateZ:
			err = s.Z(g.Q)
		case GateS:
			err = s.S(g.Q)
		case GateT:
			err = s.T(g.Q)
		case GateRX:
			err = s.RX(g.Q, g.Theta)
		case GateRY:
			err = s.RY(g.Q, g.Theta)
		case GateRZ:
			err = s.RZ(g.Q, g.Theta)
		case GateCX:
			err = s.CX(g.Control, g.Q)
		case GateCZ:
			err = s.CZ(g.Control, g.Q)
		case GateSWAP:
			err = s.SWAP(g.Control, g.Q)
		default:
			err = fmt.Errorf("qsim: unknown gate kind %v", g.Kind)
		}
		if err != nil {
			return fmt.Errorf("gate %d (%s): %w", i, g.Kind, err)
		}
	}
	return nil
}

// AmplitudeOps returns the simulation work of the circuit measured in
// amplitude updates: gates × 2^n. This is the work metric charged to the
// simulated QPU backend cost models.
func (c *Circuit) AmplitudeOps() float64 {
	return float64(len(c.Gates)) * float64(int(1)<<uint(c.NumQubits))
}

// RandomCXCircuit builds the paper's QC benchmark kernel: numCX randomly
// placed CX gates (preceded by a layer of Hadamards so the state is
// non-trivial) on n qubits.
func RandomCXCircuit(rng *rand.Rand, n, numCX int) (*Circuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("qsim: CX circuit needs >= 2 qubits, got %d", n)
	}
	c, err := NewCircuit(n)
	if err != nil {
		return nil, err
	}
	for q := 0; q < n; q++ {
		c.Append(Gate{Kind: GateH, Q: q})
	}
	for i := 0; i < numCX; i++ {
		control := rng.Intn(n)
		target := rng.Intn(n - 1)
		if target >= control {
			target++
		}
		c.Append(Gate{Kind: GateCX, Q: target, Control: control})
	}
	return c, nil
}
