package qsim

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseCircuit parses a small OpenQASM-2-style circuit description into a
// Circuit. The supported subset covers what the KaaS quantum kernels use:
//
//	// comment
//	qreg q[3];
//	h q[0];
//	cx q[0], q[1];
//	ry(0.5) q[2];
//	rz(pi/2) q[0];
//	swap q[0], q[2];
//
// Supported gates: h, x, y, z, s, t, rx, ry, rz (one parameter each for
// the rotations), cx, cz, swap. Angles accept decimal literals, "pi", and
// simple "pi/<n>" or "<n>*pi" forms. The single quantum register must be
// declared before any gate.
func ParseCircuit(src string) (*Circuit, error) {
	var (
		circuit *Circuit
		regName string
	)
	for lineNo, rawLine := range strings.Split(src, "\n") {
		line := rawLine
		if idx := strings.Index(line, "//"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := parseStatement(stmt, &circuit, &regName); err != nil {
				return nil, fmt.Errorf("qsim: line %d: %w", lineNo+1, err)
			}
		}
	}
	if circuit == nil {
		return nil, fmt.Errorf("qsim: no qreg declaration found")
	}
	return circuit, nil
}

// parseStatement handles one semicolon-terminated statement.
func parseStatement(stmt string, circuit **Circuit, regName *string) error {
	// Split the mnemonic (possibly with a parameter) from the operands.
	head, operands, _ := strings.Cut(stmt, " ")
	head = strings.TrimSpace(head)
	operands = strings.TrimSpace(operands)

	if head == "qreg" {
		if *circuit != nil {
			return fmt.Errorf("duplicate qreg declaration")
		}
		name, size, err := parseRegDecl(operands)
		if err != nil {
			return err
		}
		c, err := NewCircuit(size)
		if err != nil {
			return err
		}
		*circuit = c
		*regName = name
		return nil
	}
	if *circuit == nil {
		return fmt.Errorf("gate %q before qreg declaration", head)
	}

	mnemonic := head
	var theta float64
	var hasTheta bool
	if open := strings.Index(head, "("); open >= 0 {
		if !strings.HasSuffix(head, ")") {
			return fmt.Errorf("unterminated parameter in %q", head)
		}
		var err error
		theta, err = parseAngle(head[open+1 : len(head)-1])
		if err != nil {
			return err
		}
		hasTheta = true
		mnemonic = head[:open]
	}

	qubits, err := parseOperands(operands, *regName, (*circuit).NumQubits)
	if err != nil {
		return err
	}

	gate, wantQubits, wantTheta, err := lookupGate(strings.ToLower(mnemonic))
	if err != nil {
		return err
	}
	if len(qubits) != wantQubits {
		return fmt.Errorf("gate %s wants %d operand(s), got %d", mnemonic, wantQubits, len(qubits))
	}
	if wantTheta != hasTheta {
		if wantTheta {
			return fmt.Errorf("gate %s needs an angle parameter", mnemonic)
		}
		return fmt.Errorf("gate %s takes no parameter", mnemonic)
	}

	g := Gate{Kind: gate, Theta: theta}
	if wantQubits == 2 {
		g.Control = qubits[0]
		g.Q = qubits[1]
		if g.Control == g.Q {
			return fmt.Errorf("gate %s operands must differ", mnemonic)
		}
	} else {
		g.Q = qubits[0]
	}
	(*circuit).Append(g)
	return nil
}

// lookupGate maps a mnemonic to its kind and arity.
func lookupGate(mnemonic string) (kind GateKind, qubits int, hasTheta bool, err error) {
	switch mnemonic {
	case "h":
		return GateH, 1, false, nil
	case "x":
		return GateX, 1, false, nil
	case "y":
		return GateY, 1, false, nil
	case "z":
		return GateZ, 1, false, nil
	case "s":
		return GateS, 1, false, nil
	case "t":
		return GateT, 1, false, nil
	case "rx":
		return GateRX, 1, true, nil
	case "ry":
		return GateRY, 1, true, nil
	case "rz":
		return GateRZ, 1, true, nil
	case "cx", "cnot":
		return GateCX, 2, false, nil
	case "cz":
		return GateCZ, 2, false, nil
	case "swap":
		return GateSWAP, 2, false, nil
	default:
		return 0, 0, false, fmt.Errorf("unknown gate %q", mnemonic)
	}
}

// parseRegDecl parses "q[5]" into name and size.
func parseRegDecl(decl string) (string, int, error) {
	decl = strings.TrimSpace(decl)
	open := strings.Index(decl, "[")
	if open <= 0 || !strings.HasSuffix(decl, "]") {
		return "", 0, fmt.Errorf("bad register declaration %q", decl)
	}
	name := decl[:open]
	size, err := strconv.Atoi(decl[open+1 : len(decl)-1])
	if err != nil {
		return "", 0, fmt.Errorf("bad register size in %q: %w", decl, err)
	}
	return name, size, nil
}

// parseOperands parses "q[0], q[1]" into qubit indices.
func parseOperands(operands, regName string, numQubits int) ([]int, error) {
	if operands == "" {
		return nil, fmt.Errorf("missing operands")
	}
	parts := strings.Split(operands, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		open := strings.Index(p, "[")
		if open <= 0 || !strings.HasSuffix(p, "]") {
			return nil, fmt.Errorf("bad operand %q", p)
		}
		if name := p[:open]; name != regName {
			return nil, fmt.Errorf("unknown register %q (declared %q)", name, regName)
		}
		idx, err := strconv.Atoi(p[open+1 : len(p)-1])
		if err != nil {
			return nil, fmt.Errorf("bad qubit index in %q: %w", p, err)
		}
		if idx < 0 || idx >= numQubits {
			return nil, fmt.Errorf("qubit %d outside register of size %d", idx, numQubits)
		}
		out = append(out, idx)
	}
	return out, nil
}

// parseAngle evaluates decimal literals plus the pi forms "pi", "pi/N",
// "N*pi", and "-pi...".
func parseAngle(expr string) (float64, error) {
	expr = strings.ToLower(strings.ReplaceAll(expr, " ", ""))
	if expr == "" {
		return 0, fmt.Errorf("empty angle")
	}
	negative := false
	if strings.HasPrefix(expr, "-") {
		negative = true
		expr = expr[1:]
	}
	var v float64
	switch {
	case expr == "pi":
		v = math.Pi
	case strings.HasPrefix(expr, "pi/"):
		den, err := strconv.ParseFloat(expr[3:], 64)
		if err != nil || den == 0 {
			return 0, fmt.Errorf("bad angle %q", expr)
		}
		v = math.Pi / den
	case strings.HasSuffix(expr, "*pi"):
		mul, err := strconv.ParseFloat(expr[:len(expr)-3], 64)
		if err != nil {
			return 0, fmt.Errorf("bad angle %q", expr)
		}
		v = mul * math.Pi
	default:
		f, err := strconv.ParseFloat(expr, 64)
		if err != nil {
			return 0, fmt.Errorf("bad angle %q", expr)
		}
		v = f
	}
	if negative {
		v = -v
	}
	return v, nil
}
