package qsim

import (
	"fmt"
	"math"
)

// CP applies a controlled phase rotation: |11⟩ picks up e^{iθ} on the
// (control, target) pair. It is symmetric in its qubits.
func (s *State) CP(control, target int, theta float64) error {
	if err := s.checkQubit(control); err != nil {
		return err
	}
	if err := s.checkQubit(target); err != nil {
		return err
	}
	if control == target {
		return fmt.Errorf("qsim: CP control equals target (%d)", control)
	}
	phase := complex(math.Cos(theta), math.Sin(theta))
	mask := (1 << uint(control)) | (1 << uint(target))
	for i := 0; i < len(s.amp); i++ {
		if i&mask == mask {
			s.amp[i] *= phase
		}
	}
	return nil
}

// MCZ applies a multi-controlled Z: amplitudes whose listed qubits are
// all 1 are negated. With a single qubit it is a plain Z.
func (s *State) MCZ(qubits ...int) error {
	if len(qubits) == 0 {
		return fmt.Errorf("qsim: MCZ needs at least one qubit")
	}
	mask := 0
	for _, q := range qubits {
		if err := s.checkQubit(q); err != nil {
			return err
		}
		bit := 1 << uint(q)
		if mask&bit != 0 {
			return fmt.Errorf("qsim: MCZ repeats qubit %d", q)
		}
		mask |= bit
	}
	for i := 0; i < len(s.amp); i++ {
		if i&mask == mask {
			s.amp[i] = -s.amp[i]
		}
	}
	return nil
}

// QFT applies the quantum Fourier transform to the full register
// in place (including the final qubit-order reversal).
func (s *State) QFT() error {
	n := s.n
	for target := n - 1; target >= 0; target-- {
		if err := s.H(target); err != nil {
			return err
		}
		for k := 1; target-k >= 0; k++ {
			theta := math.Pi / float64(int(1)<<uint(k))
			if err := s.CP(target-k, target, theta); err != nil {
				return err
			}
		}
	}
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		if err := s.SWAP(i, j); err != nil {
			return err
		}
	}
	return nil
}

// InverseQFT applies the inverse quantum Fourier transform in place.
func (s *State) InverseQFT() error {
	n := s.n
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		if err := s.SWAP(i, j); err != nil {
			return err
		}
	}
	for target := 0; target < n; target++ {
		for k := target; k >= 1; k-- {
			theta := -math.Pi / float64(int(1)<<uint(k))
			if err := s.CP(target-k, target, theta); err != nil {
				return err
			}
		}
		if err := s.H(target); err != nil {
			return err
		}
	}
	return nil
}

// GroverSearch runs Grover's algorithm on n qubits for the marked basis
// state, using the optimal iteration count, and returns the final state.
// The probability of measuring the marked state approaches 1 for large n.
func GroverSearch(n, marked int) (*State, error) {
	if n < 2 {
		return nil, fmt.Errorf("qsim: Grover needs >= 2 qubits, got %d", n)
	}
	size := 1 << uint(n)
	if marked < 0 || marked >= size {
		return nil, fmt.Errorf("qsim: marked state %d outside register of %d states", marked, size)
	}
	s, err := NewState(n)
	if err != nil {
		return nil, err
	}
	// Uniform superposition.
	for q := 0; q < n; q++ {
		if err := s.H(q); err != nil {
			return nil, err
		}
	}
	// Optimal iteration count ⌊π/4·√N⌋; rounding up overshoots the
	// rotation past the marked state.
	iterations := int(math.Floor(math.Pi / 4 * math.Sqrt(float64(size))))
	if iterations < 1 {
		iterations = 1
	}
	all := make([]int, n)
	for q := range all {
		all[q] = q
	}
	for i := 0; i < iterations; i++ {
		if err := groverOracle(s, marked); err != nil {
			return nil, err
		}
		if err := groverDiffusion(s, all); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// groverOracle flips the phase of the marked state: X-conjugated MCZ.
func groverOracle(s *State, marked int) error {
	flipped, err := xConjugate(s, marked)
	if err != nil {
		return err
	}
	all := make([]int, s.n)
	for q := range all {
		all[q] = q
	}
	if err := s.MCZ(all...); err != nil {
		return err
	}
	return undoXConjugate(s, flipped)
}

// groverDiffusion is the inversion about the mean: H⊗n X⊗n MCZ X⊗n H⊗n,
// i.e. a reflection about the uniform superposition.
func groverDiffusion(s *State, all []int) error {
	for _, q := range all {
		if err := s.H(q); err != nil {
			return err
		}
	}
	for _, q := range all {
		if err := s.X(q); err != nil {
			return err
		}
	}
	if err := s.MCZ(all...); err != nil {
		return err
	}
	for _, q := range all {
		if err := s.X(q); err != nil {
			return err
		}
	}
	for _, q := range all {
		if err := s.H(q); err != nil {
			return err
		}
	}
	return nil
}

// xConjugate applies X to every qubit that is 0 in the pattern, so the
// pattern maps to |1...1⟩. It returns the flipped qubits.
func xConjugate(s *State, pattern int) ([]int, error) {
	var flipped []int
	for q := 0; q < s.n; q++ {
		if pattern&(1<<uint(q)) == 0 {
			if err := s.X(q); err != nil {
				return nil, err
			}
			flipped = append(flipped, q)
		}
	}
	return flipped, nil
}

// undoXConjugate reverses xConjugate.
func undoXConjugate(s *State, flipped []int) error {
	for _, q := range flipped {
		if err := s.X(q); err != nil {
			return err
		}
	}
	return nil
}
