package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	msg := &Message{
		Type: MsgInvoke,
		Header: Header{
			Kernel: "matmul",
			Params: map[string]float64{"n": 500, "seed": 1},
		},
		Body: []byte("payload-bytes"),
	}
	var buf bytes.Buffer
	if err := Write(&buf, msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Type != MsgInvoke {
		t.Errorf("Type = %v, want MsgInvoke", got.Type)
	}
	if got.Header.Kernel != "matmul" || got.Header.Params["n"] != 500 {
		t.Errorf("Header = %+v", got.Header)
	}
	if !bytes.Equal(got.Body, msg.Body) {
		t.Errorf("Body = %q", got.Body)
	}
}

func TestRoundTripEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Message{Type: MsgList}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Type != MsgList || len(got.Body) != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(kernel string, n float64, body []byte) bool {
		msg := &Message{
			Type:   MsgResult,
			Header: Header{Kernel: kernel, Values: map[string]float64{"n": n}},
			Body:   body,
		}
		var buf bytes.Buffer
		if err := Write(&buf, msg); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return got.Header.Kernel == kernel &&
			got.Header.Values["n"] == n &&
			bytes.Equal(got.Body, body)
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	data := []byte("NOPE\x01\x01\x00\x00\x00\x00\x00\x00\x00\x00")
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Message{Type: MsgList}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	frame := buf.Bytes()
	frame[4] = 99
	if _, err := Read(bytes.NewReader(frame)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestReadRejectsOversizeHeader(t *testing.T) {
	frame := append([]byte{}, 'K', 'A', 'A', 'S', Version, byte(MsgList))
	frame = append(frame, 0xFF, 0xFF, 0xFF, 0xFF) // huge header length
	if _, err := Read(bytes.NewReader(frame)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestReadEOFOnEmptyStream(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want io.EOF", err)
	}
}

func TestReadTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Message{Type: MsgResult, Body: []byte("1234567890")}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	truncated := buf.Bytes()[:buf.Len()-5]
	if _, err := Read(bytes.NewReader(truncated)); err == nil {
		t.Error("truncated frame succeeded")
	}
}

func TestWriteRejectsOversizeBody(t *testing.T) {
	msg := &Message{Type: MsgResult, Body: make([]byte, MaxBodyLen+1)}
	if err := Write(io.Discard, msg); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestFrameSizeMatchesWrite(t *testing.T) {
	msg := &Message{
		Type:   MsgInvoke,
		Header: Header{Kernel: "ga", Params: map[string]float64{"n": 32}},
		Body:   make([]byte, 1000),
	}
	want, err := FrameSize(msg)
	if err != nil {
		t.Fatalf("FrameSize: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if int64(buf.Len()) != want {
		t.Errorf("FrameSize = %d, actual frame = %d", want, buf.Len())
	}
}

func TestMultipleMessagesOnStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := Write(&buf, &Message{Type: MsgStats}); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := Read(&buf); err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
	}
	if _, err := Read(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("after stream end err = %v, want EOF", err)
	}
}

func TestMsgTypeString(t *testing.T) {
	for _, tt := range []struct {
		mt   MsgType
		want string
	}{
		{MsgRegister, "register"}, {MsgRegistered, "registered"},
		{MsgInvoke, "invoke"}, {MsgResult, "result"}, {MsgError, "error"},
		{MsgList, "list"}, {MsgListResult, "list-result"},
		{MsgStats, "stats"}, {MsgStatsResult, "stats-result"},
		{MsgHello, "hello"}, {MsgHelloAck, "hello-ack"}, {MsgCancel, "cancel"},
		{MsgControl, "control"}, {MsgControlAck, "control-ack"},
		{MsgLease, "lease"}, {MsgLeaseAck, "lease-ack"}, {MsgLeaseRevoke, "lease-revoke"},
		{MsgType(200), "msgtype(200)"},
	} {
		if got := tt.mt.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestMuxFrameRoundTrip(t *testing.T) {
	msg := &Message{
		Version: VersionMux,
		Type:    MsgInvoke,
		Header: Header{
			Kernel:   "matmul",
			Params:   map[string]float64{"n": 64},
			StreamID: 7,
		},
		Body: []byte("mux-payload"),
	}
	var buf bytes.Buffer
	if err := Write(&buf, msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if b := buf.Bytes(); b[4] != VersionMux {
		t.Errorf("version byte = %d, want %d", b[4], VersionMux)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Version != VersionMux {
		t.Errorf("Version = %d, want %d", got.Version, VersionMux)
	}
	if got.Header.StreamID != 7 {
		t.Errorf("StreamID = %d, want 7", got.Header.StreamID)
	}
	if !bytes.Equal(got.Body, msg.Body) {
		t.Errorf("Body = %q", got.Body)
	}
}

func TestHelloHandshakeFrames(t *testing.T) {
	var buf bytes.Buffer
	// Hello is sent as a version-1 frame so legacy peers can parse it.
	if err := Write(&buf, &Message{Type: MsgHello, Header: Header{MuxVersion: VersionMux}}); err != nil {
		t.Fatalf("Write hello: %v", err)
	}
	if b := buf.Bytes(); b[4] != Version {
		t.Errorf("hello version byte = %d, want %d (legacy-parseable)", b[4], Version)
	}
	hello, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read hello: %v", err)
	}
	if hello.Type != MsgHello || hello.Header.MuxVersion != VersionMux {
		t.Errorf("hello = %+v", hello)
	}
	if err := Write(&buf, &Message{Type: MsgHelloAck, Header: Header{MuxVersion: VersionMux, MaxStreams: 64}}); err != nil {
		t.Fatalf("Write ack: %v", err)
	}
	ack, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read ack: %v", err)
	}
	if ack.Type != MsgHelloAck || ack.Header.MuxVersion != VersionMux || ack.Header.MaxStreams != 64 {
		t.Errorf("ack = %+v", ack)
	}
}

func TestCancelFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msg := &Message{Version: VersionMux, Type: MsgCancel, Header: Header{StreamID: 42}}
	if err := Write(&buf, msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Type != MsgCancel || got.Header.StreamID != 42 {
		t.Errorf("got %+v", got)
	}
}

func TestLeaseFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	// Request, grant, a leased invoke (payload by handle, empty body),
	// the result pointing back into the window, and a revocation.
	frames := []*Message{
		{Version: VersionMux, Type: MsgLease, Header: Header{StreamID: 9, LeaseBytes: 1 << 20}},
		{Version: VersionMux, Type: MsgLeaseAck, Header: Header{StreamID: 9, LeaseID: 3, LeaseBytes: 1 << 20}},
		{Version: VersionMux, Type: MsgInvoke, Header: Header{
			Kernel: "mci", StreamID: 11, LeaseID: 3, LeaseLen: 4096,
		}},
		{Version: VersionMux, Type: MsgResult, Header: Header{
			StreamID: 11, LeaseID: 3, LeaseResultLen: 128,
		}},
		{Version: VersionMux, Type: MsgLeaseRevoke, Header: Header{LeaseID: 3}},
	}
	for _, msg := range frames {
		if err := Write(&buf, msg); err != nil {
			t.Fatalf("Write %v: %v", msg.Type, err)
		}
	}
	for _, want := range frames {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read %v: %v", want.Type, err)
		}
		if got.Type != want.Type ||
			got.Header.StreamID != want.Header.StreamID ||
			got.Header.LeaseID != want.Header.LeaseID ||
			got.Header.LeaseBytes != want.Header.LeaseBytes ||
			got.Header.LeaseLen != want.Header.LeaseLen ||
			got.Header.LeaseResultLen != want.Header.LeaseResultLen {
			t.Errorf("%v: got %+v, want %+v", want.Type, got.Header, want.Header)
		}
		if len(got.Body) != 0 {
			t.Errorf("%v: leased frame carried %d body bytes, want 0", want.Type, len(got.Body))
		}
	}
}

// TestLeaseFieldsIgnoredByLegacyDecode pins the compatibility contract:
// a frame carrying the new lease header fields decodes cleanly, and a
// header without them leaves the fields zero, so legacy peers on the
// same server never see or need them.
func TestLeaseFieldsIgnoredByLegacyDecode(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Message{Type: MsgInvoke, Header: Header{Kernel: "mci"}, Body: []byte("x")}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Header.LeaseID != 0 || got.Header.LeaseLen != 0 || got.Header.LeaseResultLen != 0 {
		t.Errorf("legacy frame decoded with lease fields set: %+v", got.Header)
	}
}

func TestWriteRejectsFutureVersion(t *testing.T) {
	msg := &Message{Version: MaxVersion + 1, Type: MsgList}
	if err := Write(io.Discard, msg); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestAppendMatchesWrite(t *testing.T) {
	msg := &Message{
		Version: VersionMux,
		Type:    MsgResult,
		Header:  Header{StreamID: 3, Values: map[string]float64{"x": 1}},
		Body:    []byte("abc"),
	}
	var buf bytes.Buffer
	if err := Write(&buf, msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	appended, err := Append(nil, msg)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), appended) {
		t.Error("Append output differs from Write output")
	}
}

// TestReadReusedAcrossMessages guards the pooled header buffer: decoded
// headers must not alias pool memory that a later Read overwrites.
func TestReadReusedAcrossMessages(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Message{Type: MsgInvoke, Header: Header{Kernel: "first-kernel-name"}}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := Write(&buf, &Message{Type: MsgInvoke, Header: Header{Kernel: "second-kernel-name"}}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	first, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if _, err := Read(&buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if first.Header.Kernel != "first-kernel-name" {
		t.Errorf("first header mutated by second Read: %q", first.Header.Kernel)
	}
}

func BenchmarkWriteRead(b *testing.B) {
	msg := &Message{
		Type: MsgInvoke,
		Header: Header{
			Kernel:   "matmul",
			Params:   map[string]float64{"n": 500},
			StreamID: 9,
		},
		Body: make([]byte, 512),
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Write(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
