// Package wire implements the KaaS network protocol: a simple length-
// prefixed binary framing with a JSON header and an opaque payload body,
// used between clients, the KaaS server, and task runners.
//
// Frame layout:
//
//	magic   [4]byte  "KAAS"
//	version uint8    protocol version (1)
//	type    uint8    message type
//	hdrLen  uint32   big endian, JSON header length
//	header  []byte   JSON-encoded Header
//	bodyLen uint32   big endian, payload length
//	body    []byte   raw payload (in-band data)
//
// The JSON header carries the control fields of the message (see Header).
// Invocation requests may set Header.DeadlineNanos — an absolute wall-clock
// deadline in Unix nanoseconds — so a server can reject work that is
// already expired when it arrives and cancel in-flight kernels whose
// client has given up. A zero DeadlineNanos means the request never
// expires. Unknown header fields are ignored on decode, so adding fields
// is backward compatible within a protocol version.
//
// Read never trusts the length prefixes for allocation: header and body
// buffers grow incrementally as bytes actually arrive, so a frame that
// claims a huge body on a truncated stream cannot force a large
// allocation.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Protocol constants.
const (
	// Version is the protocol version emitted by this package.
	Version = 1
	// MaxHeaderLen bounds the JSON header size.
	MaxHeaderLen = 1 << 20
	// MaxBodyLen bounds the payload size (256 MiB).
	MaxBodyLen = 256 << 20
)

var magic = [4]byte{'K', 'A', 'A', 'S'}

// MsgType identifies a protocol message.
type MsgType uint8

// Message types.
const (
	// MsgRegister asks the server to register a kernel.
	MsgRegister MsgType = iota + 1
	// MsgRegistered acknowledges a registration.
	MsgRegistered
	// MsgInvoke requests a kernel invocation.
	MsgInvoke
	// MsgResult returns a successful invocation result.
	MsgResult
	// MsgError reports a failure.
	MsgError
	// MsgList requests the registered kernel names.
	MsgList
	// MsgListResult returns the registered kernel names.
	MsgListResult
	// MsgStats requests server statistics.
	MsgStats
	// MsgStatsResult returns server statistics.
	MsgStatsResult
)

// String returns the message type name.
func (t MsgType) String() string {
	switch t {
	case MsgRegister:
		return "register"
	case MsgRegistered:
		return "registered"
	case MsgInvoke:
		return "invoke"
	case MsgResult:
		return "result"
	case MsgError:
		return "error"
	case MsgList:
		return "list"
	case MsgListResult:
		return "list-result"
	case MsgStats:
		return "stats"
	case MsgStatsResult:
		return "stats-result"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(t))
	}
}

// Machine-readable error codes carried by MsgError in Header.Code. They
// classify failures so clients can decide to retry without parsing error
// text. Unrecognized codes must be treated as CodeInternal.
const (
	// CodeOverloaded: the server shed the request under admission control
	// (queue bound, in-flight cap, or deadline-aware rejection). Retryable
	// after backoff.
	CodeOverloaded = "OVERLOADED"
	// CodeUnavailable: no device can currently serve the kernel (devices
	// failed, breakers open, or the server is draining). Retryable after
	// backoff, possibly against another replica.
	CodeUnavailable = "UNAVAILABLE"
	// CodeDeadlineExceeded: the request's deadline expired before or
	// during service. Not retryable — the client's budget is gone.
	CodeDeadlineExceeded = "DEADLINE_EXCEEDED"
	// CodeUnknownKernel: the kernel is not registered (or a registration
	// conflict). Not retryable without a registration change.
	CodeUnknownKernel = "UNKNOWN_KERNEL"
	// CodeInternal: any other server-side failure. Not retryable.
	CodeInternal = "INTERNAL"
)

// Errors returned by frame decoding.
var (
	// ErrBadMagic indicates the stream is not speaking the KaaS protocol.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrBadVersion indicates an unsupported protocol version.
	ErrBadVersion = errors.New("wire: unsupported version")
	// ErrTooLarge indicates a frame section exceeds its limit.
	ErrTooLarge = errors.New("wire: frame too large")
)

// Header carries the JSON-encoded control fields of a message.
type Header struct {
	// Kernel is the kernel name for register/invoke.
	Kernel string `json:"kernel,omitempty"`
	// Kind is the device kind name for register.
	Kind string `json:"kind,omitempty"`
	// Params are the invocation parameters.
	Params map[string]float64 `json:"params,omitempty"`
	// Values are the scalar results of an invocation.
	Values map[string]float64 `json:"values,omitempty"`
	// Error is the failure description on MsgError.
	Error string `json:"error,omitempty"`
	// Code is the machine-readable classification of the failure on
	// MsgError (one of the Code* constants). Empty on frames from servers
	// predating structured errors; clients treat that as CodeInternal.
	Code string `json:"code,omitempty"`
	// Retryable reports whether the server considers the failure
	// transient, i.e. the same request may succeed if retried after
	// backoff.
	Retryable bool `json:"retryable,omitempty"`
	// ShmKey names a shared-memory region holding the input payload
	// (out-of-band transfer). Empty means the payload is in the body.
	ShmKey string `json:"shmKey,omitempty"`
	// ResultShmKey names the region where the server stored the output
	// payload when the client requested out-of-band results.
	ResultShmKey string `json:"resultShmKey,omitempty"`
	// WantShmResult asks the server to return payloads out-of-band.
	WantShmResult bool `json:"wantShmResult,omitempty"`
	// Names lists kernel names in MsgListResult.
	Names []string `json:"names,omitempty"`
	// Stats is an opaque JSON stats document in MsgStatsResult.
	Stats json.RawMessage `json:"stats,omitempty"`
	// ColdStart reports whether the invocation started a new runner.
	ColdStart bool `json:"coldStart,omitempty"`
	// InvocationID is the server-assigned invocation identifier returned
	// on MsgResult. It joins the client-observed result with the server's
	// structured log lines and metrics for that invocation.
	InvocationID string `json:"invocationID,omitempty"`
	// DurationNanos is the server-side modeled invocation time.
	DurationNanos int64 `json:"durationNanos,omitempty"`
	// DeadlineNanos is the absolute wall-clock deadline of the request in
	// Unix nanoseconds. Servers reject frames whose deadline has already
	// passed and cancel the invocation when it expires mid-flight. Zero
	// means no deadline.
	DeadlineNanos int64 `json:"deadlineNanos,omitempty"`
}

// Message is one protocol frame.
type Message struct {
	Type   MsgType
	Header Header
	Body   []byte
}

// Write encodes and writes a message to w.
func Write(w io.Writer, msg *Message) error {
	hdr, err := json.Marshal(&msg.Header)
	if err != nil {
		return fmt.Errorf("wire: encode header: %w", err)
	}
	if len(hdr) > MaxHeaderLen {
		return fmt.Errorf("%w: header %d bytes", ErrTooLarge, len(hdr))
	}
	if len(msg.Body) > MaxBodyLen {
		return fmt.Errorf("%w: body %d bytes", ErrTooLarge, len(msg.Body))
	}
	buf := make([]byte, 0, 4+1+1+4+len(hdr)+4+len(msg.Body))
	buf = append(buf, magic[:]...)
	buf = append(buf, Version, byte(msg.Type))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(hdr)))
	buf = append(buf, hdr...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(msg.Body)))
	buf = append(buf, msg.Body...)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// Read decodes one message from r.
func Read(r io.Reader) (*Message, error) {
	var pre [10]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read preamble: %w", err)
	}
	if [4]byte(pre[:4]) != magic {
		return nil, ErrBadMagic
	}
	if pre[4] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, pre[4])
	}
	msg := &Message{Type: MsgType(pre[5])}
	hdrLen := binary.BigEndian.Uint32(pre[6:10])
	if hdrLen > MaxHeaderLen {
		return nil, fmt.Errorf("%w: header %d bytes", ErrTooLarge, hdrLen)
	}
	hdr, err := readSection(r, int(hdrLen))
	if err != nil {
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	if err := json.Unmarshal(hdr, &msg.Header); err != nil {
		return nil, fmt.Errorf("wire: decode header: %w", err)
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("wire: read body length: %w", err)
	}
	bodyLen := binary.BigEndian.Uint32(lenBuf[:])
	if bodyLen > MaxBodyLen {
		return nil, fmt.Errorf("%w: body %d bytes", ErrTooLarge, bodyLen)
	}
	if bodyLen > 0 {
		msg.Body, err = readSection(r, int(bodyLen))
		if err != nil {
			return nil, fmt.Errorf("wire: read body: %w", err)
		}
	}
	return msg, nil
}

// allocChunk caps how much readSection allocates ahead of the bytes that
// have actually arrived.
const allocChunk = 64 << 10

// readSection reads exactly n bytes, growing the buffer chunk by chunk so
// a frame that lies about its length on a truncated stream only costs as
// much memory as the stream really delivers.
func readSection(r io.Reader, n int) ([]byte, error) {
	if n <= 0 {
		return nil, nil
	}
	cap0 := n
	if cap0 > allocChunk {
		cap0 = allocChunk
	}
	buf := make([]byte, 0, cap0)
	for len(buf) < n {
		chunk := n - len(buf)
		if chunk > allocChunk {
			chunk = allocChunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			if errors.Is(err, io.EOF) && start > 0 {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return buf, nil
}

// FrameSize returns the on-wire size of a message without writing it, used
// by the network shaper to model transfer time.
func FrameSize(msg *Message) (int64, error) {
	hdr, err := json.Marshal(&msg.Header)
	if err != nil {
		return 0, fmt.Errorf("wire: encode header: %w", err)
	}
	return int64(4 + 1 + 1 + 4 + len(hdr) + 4 + len(msg.Body)), nil
}
