// Package wire implements the KaaS network protocol: a simple length-
// prefixed binary framing with a JSON header and an opaque payload body,
// used between clients, the KaaS server, and task runners.
//
// Frame layout:
//
//	magic   [4]byte  "KAAS"
//	version uint8    protocol version (1 or 2)
//	type    uint8    message type
//	hdrLen  uint32   big endian, JSON header length
//	header  []byte   JSON-encoded Header
//	bodyLen uint32   big endian, payload length
//	body    []byte   raw payload (in-band data)
//
// The JSON header carries the control fields of the message (see Header).
// Invocation requests may set Header.DeadlineNanos — an absolute wall-clock
// deadline in Unix nanoseconds — so a server can reject work that is
// already expired when it arrives and cancel in-flight kernels whose
// client has given up. A zero DeadlineNanos means the request never
// expires. Unknown header fields are ignored on decode, so adding fields
// is backward compatible within a protocol version.
//
// Version 1 is the legacy one-request-per-connection protocol: each frame
// on a connection belongs to the single outstanding request. Version 2
// adds connection multiplexing: frames carry Header.StreamID, many
// requests share one connection concurrently, replies are matched to
// requests by stream, and MsgCancel aborts one stream without tearing
// down the shared socket. A connection speaks version 2 only after a
// MsgHello/MsgHelloAck negotiation (sent as version-1 frames, so a
// legacy peer answers with a plain error and the client falls back).
//
// Read never trusts the length prefixes for allocation: header and body
// buffers grow incrementally as bytes actually arrive, so a frame that
// claims a huge body on a truncated stream cannot force a large
// allocation. Write and Read reuse frame and header buffers through
// sync.Pools, keeping steady-state allocations on the invoke hot path
// near zero for small frames.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Protocol constants.
const (
	// Version is the legacy one-request-per-connection protocol version.
	Version = 1
	// VersionMux is the multiplexed protocol version: frames carry a
	// StreamID and many requests share one connection.
	VersionMux = 2
	// MaxVersion is the highest protocol version this package decodes.
	MaxVersion = VersionMux
	// MaxHeaderLen bounds the JSON header size.
	MaxHeaderLen = 1 << 20
	// MaxBodyLen bounds the payload size (256 MiB).
	MaxBodyLen = 256 << 20
)

var magic = [4]byte{'K', 'A', 'A', 'S'}

// MsgType identifies a protocol message.
type MsgType uint8

// Message types.
const (
	// MsgRegister asks the server to register a kernel.
	MsgRegister MsgType = iota + 1
	// MsgRegistered acknowledges a registration.
	MsgRegistered
	// MsgInvoke requests a kernel invocation.
	MsgInvoke
	// MsgResult returns a successful invocation result.
	MsgResult
	// MsgError reports a failure.
	MsgError
	// MsgList requests the registered kernel names.
	MsgList
	// MsgListResult returns the registered kernel names.
	MsgListResult
	// MsgStats requests server statistics.
	MsgStats
	// MsgStatsResult returns server statistics.
	MsgStatsResult
	// MsgHello offers a protocol upgrade: Header.MuxVersion is the
	// highest version the client speaks. Sent as a version-1 frame so a
	// legacy server answers MsgError ("unexpected message type") and the
	// client falls back to the one-request-per-connection protocol.
	MsgHello
	// MsgHelloAck accepts a protocol upgrade: Header.MuxVersion is the
	// negotiated version and Header.MaxStreams the per-connection
	// concurrent-stream bound the server enforces.
	MsgHelloAck
	// MsgCancel aborts one in-flight stream (Header.StreamID) on a
	// multiplexed connection without closing the shared socket. The
	// cancelled invocation still produces a (best-effort, usually
	// discarded) error reply on its stream.
	MsgCancel
	// MsgControl carries a cluster control-plane request (heartbeat
	// gossip, membership status) as an opaque JSON body. The wire layer
	// does not interpret the payload; servers without a control plane
	// answer MsgError, which a joining node treats as "peer not
	// clustered".
	MsgControl
	// MsgControlAck returns the control-plane reply payload for a
	// MsgControl request.
	MsgControlAck
	// MsgLease asks the server for a window into its pooled tensor arena
	// (Header.LeaseBytes requested capacity) so later invocations on the
	// same connection can pass payloads by handle instead of in the frame
	// body. Sent only on multiplexed (version 2) connections; the reply is
	// matched by Header.StreamID like any other stream.
	MsgLease
	// MsgLeaseAck grants a lease: Header.LeaseID names the window and
	// Header.LeaseBytes its granted capacity. A denial carries
	// Header.Error instead, and the client falls back to in-band
	// transfer without surfacing a failure.
	MsgLeaseAck
	// MsgLeaseRevoke withdraws a granted lease (Header.LeaseID), sent by
	// the server on drain, connection teardown, or a circuit-breaker
	// opening. The client drops the lease from its pool; invocations
	// already in flight against it are answered with a retryable
	// LEASE_REVOKED error and resent in-band.
	MsgLeaseRevoke
)

// String returns the message type name.
func (t MsgType) String() string {
	switch t {
	case MsgRegister:
		return "register"
	case MsgRegistered:
		return "registered"
	case MsgInvoke:
		return "invoke"
	case MsgResult:
		return "result"
	case MsgError:
		return "error"
	case MsgList:
		return "list"
	case MsgListResult:
		return "list-result"
	case MsgStats:
		return "stats"
	case MsgStatsResult:
		return "stats-result"
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "hello-ack"
	case MsgCancel:
		return "cancel"
	case MsgControl:
		return "control"
	case MsgControlAck:
		return "control-ack"
	case MsgLease:
		return "lease"
	case MsgLeaseAck:
		return "lease-ack"
	case MsgLeaseRevoke:
		return "lease-revoke"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(t))
	}
}

// Machine-readable error codes carried by MsgError in Header.Code. They
// classify failures so clients can decide to retry without parsing error
// text. Unrecognized codes must be treated as CodeInternal.
const (
	// CodeOverloaded: the server shed the request under admission control
	// (queue bound, in-flight cap, or deadline-aware rejection). Retryable
	// after backoff.
	CodeOverloaded = "OVERLOADED"
	// CodeUnavailable: no device can currently serve the kernel (devices
	// failed, breakers open, or the server is draining). Retryable after
	// backoff, possibly against another replica.
	CodeUnavailable = "UNAVAILABLE"
	// CodeDeadlineExceeded: the request's deadline expired before or
	// during service. Not retryable — the client's budget is gone.
	CodeDeadlineExceeded = "DEADLINE_EXCEEDED"
	// CodeUnknownKernel: the kernel is not registered (or a registration
	// conflict). Not retryable without a registration change.
	CodeUnknownKernel = "UNKNOWN_KERNEL"
	// CodeInternal: any other server-side failure. Not retryable.
	CodeInternal = "INTERNAL"
	// CodeLeaseRevoked: the invocation referenced an arena lease the
	// server has since revoked (drain, breaker-open, or connection
	// cleanup). Retryable — the client resends the same request in-band
	// (or under a fresh lease) without surfacing an error to the caller.
	CodeLeaseRevoked = "LEASE_REVOKED"
)

// Errors returned by frame decoding.
var (
	// ErrBadMagic indicates the stream is not speaking the KaaS protocol.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrBadVersion indicates an unsupported protocol version.
	ErrBadVersion = errors.New("wire: unsupported version")
	// ErrTooLarge indicates a frame section exceeds its limit.
	ErrTooLarge = errors.New("wire: frame too large")
)

// Header carries the JSON-encoded control fields of a message.
type Header struct {
	// Kernel is the kernel name for register/invoke.
	Kernel string `json:"kernel,omitempty"`
	// Tenant identifies the invoking tenant for fair queueing on
	// MsgInvoke. Legacy (pre-tenant) peers omit it; servers map the empty
	// string to the deterministic "default" tenant so mixed-version
	// clusters do not split accounting between "" and "default".
	Tenant string `json:"tenant,omitempty"`
	// Kind is the device kind name for register.
	Kind string `json:"kind,omitempty"`
	// Params are the invocation parameters.
	Params map[string]float64 `json:"params,omitempty"`
	// Values are the scalar results of an invocation.
	Values map[string]float64 `json:"values,omitempty"`
	// Error is the failure description on MsgError.
	Error string `json:"error,omitempty"`
	// Code is the machine-readable classification of the failure on
	// MsgError (one of the Code* constants). Empty on frames from servers
	// predating structured errors; clients treat that as CodeInternal.
	Code string `json:"code,omitempty"`
	// Retryable reports whether the server considers the failure
	// transient, i.e. the same request may succeed if retried after
	// backoff.
	Retryable bool `json:"retryable,omitempty"`
	// ShmKey names a shared-memory region holding the input payload
	// (out-of-band transfer). Empty means the payload is in the body.
	ShmKey string `json:"shmKey,omitempty"`
	// ResultShmKey names the region where the server stored the output
	// payload when the client requested out-of-band results.
	ResultShmKey string `json:"resultShmKey,omitempty"`
	// WantShmResult asks the server to return payloads out-of-band.
	WantShmResult bool `json:"wantShmResult,omitempty"`
	// Names lists kernel names in MsgListResult.
	Names []string `json:"names,omitempty"`
	// Stats is an opaque JSON stats document in MsgStatsResult.
	Stats json.RawMessage `json:"stats,omitempty"`
	// ColdStart reports whether the invocation started a new runner.
	ColdStart bool `json:"coldStart,omitempty"`
	// CachedColdStart reports whether a cold start skipped JIT
	// compilation because the compiled artifact was already cached.
	// Only meaningful when ColdStart is true.
	CachedColdStart bool `json:"cachedColdStart,omitempty"`
	// InvocationID is the server-assigned invocation identifier returned
	// on MsgResult. It joins the client-observed result with the server's
	// structured log lines and metrics for that invocation.
	InvocationID string `json:"invocationID,omitempty"`
	// DurationNanos is the server-side modeled invocation time.
	DurationNanos int64 `json:"durationNanos,omitempty"`
	// DeadlineNanos is the absolute wall-clock deadline of the request in
	// Unix nanoseconds. Servers reject frames whose deadline has already
	// passed and cancel the invocation when it expires mid-flight. Zero
	// means no deadline.
	DeadlineNanos int64 `json:"deadlineNanos,omitempty"`
	// StreamID identifies the request/reply stream on a multiplexed
	// (version 2) connection. The client assigns it on requests; the
	// server echoes it on the matching reply and on MsgCancel it names
	// the stream to abort. Zero on version-1 connections.
	StreamID uint64 `json:"streamID,omitempty"`
	// MuxVersion carries the offered (MsgHello) or negotiated
	// (MsgHelloAck) protocol version during the upgrade handshake.
	MuxVersion uint8 `json:"muxVersion,omitempty"`
	// MaxStreams advertises, on MsgHelloAck, how many concurrent streams
	// the server will serve per connection before applying backpressure.
	MaxStreams int `json:"maxStreams,omitempty"`
	// LeaseID names an arena lease: the granted window on MsgLeaseAck,
	// the revoked window on MsgLeaseRevoke, and — on MsgInvoke — the
	// window holding the input payload (out-of-band transfer over the
	// mux; zero means the payload is in the body or named by ShmKey).
	LeaseID uint64 `json:"leaseID,omitempty"`
	// LeaseBytes is the requested (MsgLease) or granted (MsgLeaseAck)
	// capacity of an arena lease in bytes.
	LeaseBytes int64 `json:"leaseBytes,omitempty"`
	// LeaseLen is the length of the input payload within the leased
	// window on a MsgInvoke that carries LeaseID.
	LeaseLen int64 `json:"leaseLen,omitempty"`
	// LeaseResultLen, on MsgResult, is the length of the output payload
	// the server wrote back into the invocation's leased window. Zero
	// means the result (if any) is in the frame body.
	LeaseResultLen int64 `json:"leaseResultLen,omitempty"`
}

// Message is one protocol frame.
type Message struct {
	Type   MsgType
	Header Header
	Body   []byte
	// Version is the protocol version of the frame: set by Read on
	// decode, honored by Write on encode. Zero encodes as Version (1).
	Version uint8
}

// maxPooledBuf caps the size of buffers retained by the frame pools so a
// single huge payload cannot pin memory forever.
const maxPooledBuf = 64 << 10

// bufPool recycles frame-encoding scratch buffers across Write calls.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// hdrPool recycles header-decoding buffers across Read calls. The JSON
// decoder copies everything it keeps, so the buffer never escapes.
var hdrPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// frameVersion resolves the version byte a message encodes with.
func frameVersion(msg *Message) (uint8, error) {
	v := msg.Version
	if v == 0 {
		v = Version
	}
	if v > MaxVersion {
		return 0, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	return v, nil
}

// Append encodes msg onto buf and returns the extended slice. It is the
// allocation-free core of Write, used directly by the multiplexed
// transports to coalesce several frames into one socket write.
func Append(buf []byte, msg *Message) ([]byte, error) {
	v, err := frameVersion(msg)
	if err != nil {
		return buf, err
	}
	hdr, err := json.Marshal(&msg.Header)
	if err != nil {
		return buf, fmt.Errorf("wire: encode header: %w", err)
	}
	if len(hdr) > MaxHeaderLen {
		return buf, fmt.Errorf("%w: header %d bytes", ErrTooLarge, len(hdr))
	}
	if len(msg.Body) > MaxBodyLen {
		return buf, fmt.Errorf("%w: body %d bytes", ErrTooLarge, len(msg.Body))
	}
	buf = append(buf, magic[:]...)
	buf = append(buf, v, byte(msg.Type))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(hdr)))
	buf = append(buf, hdr...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(msg.Body)))
	buf = append(buf, msg.Body...)
	return buf, nil
}

// Write encodes and writes a message to w. The encoding buffer is pooled,
// so steady-state Writes of small frames do not allocate beyond the JSON
// header encoding.
func Write(w io.Writer, msg *Message) error {
	bp := bufPool.Get().(*[]byte)
	buf, err := Append((*bp)[:0], msg)
	if err != nil {
		bufPool.Put(bp)
		return err
	}
	_, werr := w.Write(buf)
	if cap(buf) <= maxPooledBuf {
		*bp = buf[:0]
		bufPool.Put(bp)
	}
	if werr != nil {
		return fmt.Errorf("wire: write frame: %w", werr)
	}
	return nil
}

// Read decodes one message from r, accepting protocol versions 1 and 2
// and recording which one the frame carried in Message.Version.
func Read(r io.Reader) (*Message, error) {
	var pre [10]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read preamble: %w", err)
	}
	if [4]byte(pre[:4]) != magic {
		return nil, ErrBadMagic
	}
	if pre[4] == 0 || pre[4] > MaxVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, pre[4])
	}
	msg := &Message{Type: MsgType(pre[5]), Version: pre[4]}
	hdrLen := binary.BigEndian.Uint32(pre[6:10])
	if hdrLen > MaxHeaderLen {
		return nil, fmt.Errorf("%w: header %d bytes", ErrTooLarge, hdrLen)
	}
	if err := readHeader(r, int(hdrLen), &msg.Header); err != nil {
		return nil, err
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("wire: read body length: %w", err)
	}
	bodyLen := binary.BigEndian.Uint32(lenBuf[:])
	if bodyLen > MaxBodyLen {
		return nil, fmt.Errorf("%w: body %d bytes", ErrTooLarge, bodyLen)
	}
	if bodyLen > 0 {
		var err error
		msg.Body, err = readSection(r, int(bodyLen))
		if err != nil {
			return nil, fmt.Errorf("wire: read body: %w", err)
		}
	}
	return msg, nil
}

// readHeader reads and decodes the n-byte JSON header into out. Small
// headers pass through a pooled buffer (the decoder copies what it
// keeps); oversized ones fall back to the incremental section reader.
func readHeader(r io.Reader, n int, out *Header) error {
	if n > maxPooledBuf {
		hdr, err := readSection(r, n)
		if err != nil {
			return fmt.Errorf("wire: read header: %w", err)
		}
		if err := json.Unmarshal(hdr, out); err != nil {
			return fmt.Errorf("wire: decode header: %w", err)
		}
		return nil
	}
	bp := hdrPool.Get().(*[]byte)
	defer hdrPool.Put(bp)
	buf := *bp
	if cap(buf) < n {
		buf = make([]byte, n)
		*bp = buf
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("wire: read header: %w", err)
	}
	if err := json.Unmarshal(buf, out); err != nil {
		return fmt.Errorf("wire: decode header: %w", err)
	}
	return nil
}

// allocChunk caps how much readSection allocates ahead of the bytes that
// have actually arrived.
const allocChunk = 64 << 10

// readSection reads exactly n bytes, growing the buffer chunk by chunk so
// a frame that lies about its length on a truncated stream only costs as
// much memory as the stream really delivers.
func readSection(r io.Reader, n int) ([]byte, error) {
	if n <= 0 {
		return nil, nil
	}
	cap0 := n
	if cap0 > allocChunk {
		cap0 = allocChunk
	}
	buf := make([]byte, 0, cap0)
	for len(buf) < n {
		chunk := n - len(buf)
		if chunk > allocChunk {
			chunk = allocChunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			if errors.Is(err, io.EOF) && start > 0 {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return buf, nil
}

// FrameSize returns the on-wire size of a message without writing it, used
// by the network shaper to model transfer time.
func FrameSize(msg *Message) (int64, error) {
	hdr, err := json.Marshal(&msg.Header)
	if err != nil {
		return 0, fmt.Errorf("wire: encode header: %w", err)
	}
	return int64(4 + 1 + 1 + 4 + len(hdr) + 4 + len(msg.Body)), nil
}

// CheckEncodable verifies that a client-built message can be encoded
// without paying for a full header encode: the only header fields a
// caller can make unencodable are the float maps, since JSON cannot
// represent non-finite numbers. Transports that share one socket across
// callers use it to fail an unencodable request on its own, before the
// frame reaches the connection's writer (where an encode failure would
// have to kill the shared socket).
func CheckEncodable(msg *Message) error {
	for k, v := range msg.Header.Params {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("wire: encode header: param %q is %v, not representable in JSON", k, v)
		}
	}
	for k, v := range msg.Header.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("wire: encode header: value %q is %v, not representable in JSON", k, v)
		}
	}
	return nil
}
