package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// seedFrames returns encoded frames covering the message types exercised
// by wire_test.go, used as the fuzz corpus.
func seedFrames(t testing.TB) [][]byte {
	t.Helper()
	msgs := []*Message{
		{Type: MsgInvoke, Header: Header{
			Kernel: "matmul",
			Params: map[string]float64{"n": 500, "seed": 1},
		}, Body: []byte("payload-bytes")},
		{Type: MsgList},
		{Type: MsgResult, Header: Header{
			Kernel: "matmul",
			Values: map[string]float64{"checksum": 42},
		}, Body: make([]byte, 100)},
		{Type: MsgError, Header: Header{Error: "boom"}},
		{Type: MsgInvoke, Header: Header{
			Kernel:        "bitmap",
			ShmKey:        "region-1",
			WantShmResult: true,
			DeadlineNanos: 1700000000000000000,
		}},
		{Type: MsgStatsResult, Header: Header{Stats: []byte(`{"Kernels":1}`)}},
		// Multiplexed (version 2) frames: a StreamID-carrying invoke, the
		// upgrade handshake, and a per-stream cancel.
		{Version: VersionMux, Type: MsgInvoke, Header: Header{
			Kernel:   "mci",
			Params:   map[string]float64{"n": 1000},
			StreamID: 7,
		}, Body: []byte("mux-payload")},
		{Type: MsgHello, Header: Header{MuxVersion: VersionMux}},
		{Version: VersionMux, Type: MsgHelloAck, Header: Header{MuxVersion: VersionMux, MaxStreams: 64}},
		{Version: VersionMux, Type: MsgCancel, Header: Header{StreamID: 42}},
		// Out-of-band data plane (version 2): lease negotiation, grant,
		// revocation, and a leased invoke whose payload travels by handle
		// (empty body, LeaseID + LeaseLen in the header).
		{Version: VersionMux, Type: MsgLease, Header: Header{StreamID: 9, LeaseBytes: 1 << 20}},
		{Version: VersionMux, Type: MsgLeaseAck, Header: Header{StreamID: 9, LeaseID: 3, LeaseBytes: 1 << 20}},
		{Version: VersionMux, Type: MsgLeaseAck, Header: Header{StreamID: 9, Error: "lease denied: no arena"}},
		{Version: VersionMux, Type: MsgLeaseRevoke, Header: Header{LeaseID: 3}},
		{Version: VersionMux, Type: MsgInvoke, Header: Header{
			Kernel:   "mci",
			Params:   map[string]float64{"n": 1000},
			StreamID: 11,
			LeaseID:  3,
			LeaseLen: 4096,
		}},
		{Version: VersionMux, Type: MsgResult, Header: Header{
			StreamID:       11,
			LeaseID:        3,
			LeaseResultLen: 128,
		}},
		// Stale/duplicate lease shapes: an invoke against a lease the
		// server never granted, and a double grant of the same window.
		{Version: VersionMux, Type: MsgInvoke, Header: Header{
			Kernel: "mci", StreamID: 12, LeaseID: 999999, LeaseLen: 8,
		}},
		{Version: VersionMux, Type: MsgLeaseAck, Header: Header{StreamID: 13, LeaseID: 3, LeaseBytes: 1 << 20}},
	}
	frames := make([][]byte, 0, len(msgs))
	for _, m := range msgs {
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("seed Write: %v", err)
		}
		frames = append(frames, buf.Bytes())
	}
	return frames
}

// FuzzRead throws arbitrary byte streams at the frame decoder: it must
// never panic, and any frame it accepts must re-encode and decode to the
// same message.
func FuzzRead(f *testing.F) {
	for _, frame := range seedFrames(f) {
		f.Add(frame)
	}
	// Hand-built hostile frames: truncations, oversized sections, bad
	// magic, and future protocol versions.
	f.Add([]byte("KAAS"))
	f.Add([]byte("NOPE\x01\x01\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte{'K', 'A', 'A', 'S', 99, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{'K', 'A', 'A', 'S', Version, 1, 0xFF, 0xFF, 0xFF, 0xFF})
	huge := []byte{'K', 'A', 'A', 'S', Version, 1, 0, 0, 0, 2, '{', '}'}
	huge = binary.BigEndian.AppendUint32(huge, 0xFFFFFFF0) // body length lie
	f.Add(huge)
	// Truncated lease frames: every prefix boundary of an encoded
	// MsgLease/MsgLeaseAck must fail cleanly, never panic or over-read.
	var leaseBuf bytes.Buffer
	if err := Write(&leaseBuf, &Message{Version: VersionMux, Type: MsgLease,
		Header: Header{StreamID: 9, LeaseBytes: 1 << 20}}); err != nil {
		f.Fatalf("seed Write: %v", err)
	}
	leaseFrame := leaseBuf.Bytes()
	for _, cut := range []int{4, 6, 10, len(leaseFrame) / 2, len(leaseFrame) - 1} {
		if cut < len(leaseFrame) {
			f.Add(append([]byte(nil), leaseFrame[:cut]...))
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted frames must survive a round trip.
		var buf bytes.Buffer
		if err := Write(&buf, msg); err != nil {
			t.Fatalf("re-encode accepted frame: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decode accepted frame: %v", err)
		}
		if again.Type != msg.Type || !bytes.Equal(again.Body, msg.Body) {
			t.Fatalf("round trip changed frame: %+v != %+v", again, msg)
		}
	})
}

// FuzzRoundTrip encodes arbitrary well-formed messages and checks the
// decoder returns them unchanged.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(MsgInvoke), "matmul", "", float64(500), []byte("data"), int64(0))
	f.Add(uint8(MsgError), "", "cost model: bad n", float64(-1), []byte(nil), int64(0))
	f.Add(uint8(MsgResult), "dtw", "", float64(3.5), make([]byte, 300), int64(1700000000000000000))
	f.Fuzz(func(t *testing.T, typ uint8, kernel, errText string, n float64, body []byte, deadline int64) {
		msg := &Message{
			Type: MsgType(typ),
			Header: Header{
				Kernel:        kernel,
				Error:         errText,
				Params:        map[string]float64{"n": n},
				DeadlineNanos: deadline,
			},
			Body: body,
		}
		var buf bytes.Buffer
		if err := Write(&buf, msg); err != nil {
			// Unencodable headers (NaN/Inf params don't marshal to
			// JSON) are a caller error, not a protocol bug.
			t.Skip()
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read of own Write failed: %v", err)
		}
		if got.Type != msg.Type {
			t.Errorf("Type = %v, want %v", got.Type, msg.Type)
		}
		if !bytes.Equal(got.Body, msg.Body) {
			t.Errorf("Body = %q, want %q", got.Body, msg.Body)
		}
		if got.Header.DeadlineNanos != deadline {
			t.Errorf("DeadlineNanos = %d, want %d", got.Header.DeadlineNanos, deadline)
		}
		if !reflect.DeepEqual(got.Header.Params, msg.Header.Params) {
			t.Errorf("Params = %v, want %v", got.Header.Params, msg.Header.Params)
		}
	})
}
