package faults

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"kaas/internal/vclock"
)

// fakeDevice implements FailRepairer and records its health.
type fakeDevice struct {
	mu   sync.Mutex
	down bool
}

func (d *fakeDevice) Fail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.down = true
}

func (d *fakeDevice) Repair() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.down = false
}

func (d *fakeDevice) Down() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.down
}

func TestFlapScheduleRunsToCompletion(t *testing.T) {
	GuardGoroutines(t)
	clock := vclock.Scaled(1000)
	dev := &fakeDevice{}
	f := NewDeviceFlapper(dev)
	s := FlapSchedule{
		Delay:  100 * time.Millisecond,
		Cycles: 3,
		Down:   200 * time.Millisecond,
		Up:     200 * time.Millisecond,
	}
	if err := f.Run(context.Background(), clock, s); err != nil {
		t.Fatalf("Run: %v", err)
	}
	fails, repairs := f.Cycles()
	if fails != 3 || repairs != 3 {
		t.Errorf("cycles = %d/%d, want 3/3", fails, repairs)
	}
	if got, want := fails+repairs, s.Transitions(); got != want {
		t.Errorf("driven transitions = %d, want Transitions() = %d", got, want)
	}
	if dev.Down() {
		t.Error("device left failed after a completed schedule")
	}
}

func TestFlapScheduleCancelMidFlapRepairsAndReturns(t *testing.T) {
	GuardGoroutines(t)
	clock := vclock.Scaled(1000)
	dev := &fakeDevice{}
	f := NewDeviceFlapper(dev)
	// Down is an hour of modeled time (3.6 wall seconds at this scale):
	// a run that is not promptly cancellable would blow the timeout.
	s := FlapSchedule{Cycles: 1, Down: time.Hour, Up: time.Hour}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- f.Run(ctx, clock, s) }()

	// Wait until the flapper has taken the device down, then cancel.
	deadline := time.Now().Add(2 * time.Second)
	for !f.Down() {
		if time.Now().After(deadline) {
			t.Fatal("flapper never failed the device")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Run = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return promptly after cancellation mid-flap")
	}
	if dev.Down() {
		t.Error("device left failed after cancellation mid-flap")
	}
	if f.Down() {
		t.Error("flapper still reports down after cancellation")
	}
}

func TestFlapScheduleCancelDuringDelay(t *testing.T) {
	GuardGoroutines(t)
	clock := vclock.Scaled(1000)
	dev := &fakeDevice{}
	f := NewDeviceFlapper(dev)
	s := FlapSchedule{Delay: time.Hour, Cycles: 1, Down: time.Second}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.Run(ctx, clock, s); !errors.Is(err, context.Canceled) {
		t.Errorf("Run = %v, want context.Canceled", err)
	}
	fails, _ := f.Cycles()
	if fails != 0 {
		t.Errorf("fails = %d, want 0 (cancelled before first failure)", fails)
	}
}

func TestFlapScheduleZeroCyclesIsNoop(t *testing.T) {
	GuardGoroutines(t)
	clock := vclock.Scaled(1000)
	f := NewDeviceFlapper(&fakeDevice{})
	if err := f.Run(context.Background(), clock, FlapSchedule{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	fails, repairs := f.Cycles()
	if fails != 0 || repairs != 0 {
		t.Errorf("cycles = %d/%d, want 0/0", fails, repairs)
	}
}
