// Package faults provides deterministic fault injection for the KaaS
// invocation path: a net.Conn wrapper that breaks traffic in controlled
// ways (drop after N bytes, stall, slow writes, close mid-frame, corrupt
// a frame) and a net.Listener wrapper that applies a scripted fault plan
// to each accepted connection.
//
// All faults are parameterized explicitly and any randomness comes from a
// caller-seeded PRNG, so a failing test reproduces from its seed — the
// same discipline the vclock package applies to time. The robustness
// tests in internal/client and internal/core drive every mode, and the
// benchmark harness (kaasbench -faultcheck) uses the listener wrapper to
// measure client retry behaviour under injected failures.
package faults

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjected marks an I/O failure produced by fault injection rather
// than the real network.
var ErrInjected = errors.New("faults: injected failure")

// Mode selects how a connection misbehaves. All modes act on the wrapped
// side's write path (the direction under test) except Stall, which delays
// reads as well.
type Mode int

// Fault modes.
const (
	// None passes traffic through untouched.
	None Mode = iota
	// DropAfterN closes the connection after N bytes have been written
	// through it, truncating whatever frame is in flight.
	DropAfterN
	// Stall sleeps Delay before every read and write, simulating a
	// hung peer; combined with deadlines it produces timeouts.
	Stall
	// SlowWrite splits writes into Chunk-byte pieces with Delay between
	// them, simulating a congested link without breaking frames.
	SlowWrite
	// CloseMidFrame writes roughly half of the first multi-byte write,
	// then closes the connection.
	CloseMidFrame
	// CorruptFrame flips one byte (at offset N of the first write)
	// and then passes traffic through, desynchronizing the stream.
	CorruptFrame
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case DropAfterN:
		return "drop-after-n"
	case Stall:
		return "stall"
	case SlowWrite:
		return "slow-write"
	case CloseMidFrame:
		return "close-mid-frame"
	case CorruptFrame:
		return "corrupt-frame"
	default:
		return "mode(?)"
	}
}

// Plan configures the faults on one connection.
type Plan struct {
	// Mode is the fault to inject.
	Mode Mode
	// N is the byte threshold: bytes written before DropAfterN trips,
	// the truncation point for CloseMidFrame (0 = half the write), or
	// the corrupted byte offset for CorruptFrame.
	N int64
	// Chunk is the SlowWrite piece size (default 64 bytes).
	Chunk int
	// Delay paces Stall and SlowWrite (default 1 ms).
	Delay time.Duration
}

// Conn wraps a net.Conn with a fault plan. It is safe for the usual
// net.Conn concurrency (one reader plus one writer).
type Conn struct {
	inner net.Conn
	plan  Plan

	mu      sync.Mutex
	written int64
	tripped bool
	closed  bool
}

var _ net.Conn = (*Conn)(nil)

// NewConn wraps a connection with the given fault plan.
func NewConn(inner net.Conn, plan Plan) *Conn {
	if plan.Chunk <= 0 {
		plan.Chunk = 64
	}
	if plan.Delay <= 0 {
		plan.Delay = time.Millisecond
	}
	return &Conn{inner: inner, plan: plan}
}

// Read reads from the connection, stalling first when the plan says so.
func (c *Conn) Read(p []byte) (int, error) {
	if c.plan.Mode == Stall {
		time.Sleep(c.plan.Delay)
	}
	return c.inner.Read(p)
}

// Write writes through the connection, injecting the planned fault.
func (c *Conn) Write(p []byte) (int, error) {
	switch c.plan.Mode {
	case DropAfterN:
		return c.writeDrop(p)
	case Stall:
		time.Sleep(c.plan.Delay)
		return c.inner.Write(p)
	case SlowWrite:
		return c.writeSlow(p)
	case CloseMidFrame:
		return c.writeCloseMidFrame(p)
	case CorruptFrame:
		return c.writeCorrupt(p)
	default:
		return c.inner.Write(p)
	}
}

// writeDrop forwards bytes until the threshold, then closes the conn.
func (c *Conn) writeDrop(p []byte) (int, error) {
	c.mu.Lock()
	remaining := c.plan.N - c.written
	c.mu.Unlock()
	if remaining <= 0 {
		c.Close()
		return 0, ErrInjected
	}
	if int64(len(p)) <= remaining {
		n, err := c.inner.Write(p)
		c.account(n)
		return n, err
	}
	n, _ := c.inner.Write(p[:remaining])
	c.account(n)
	c.Close()
	return n, ErrInjected
}

// writeSlow forwards the buffer in paced chunks.
func (c *Conn) writeSlow(p []byte) (int, error) {
	total := 0
	for total < len(p) {
		end := total + c.plan.Chunk
		if end > len(p) {
			end = len(p)
		}
		n, err := c.inner.Write(p[total:end])
		total += n
		if err != nil {
			return total, err
		}
		if total < len(p) {
			time.Sleep(c.plan.Delay)
		}
	}
	return total, nil
}

// writeCloseMidFrame truncates the first multi-byte write and closes.
func (c *Conn) writeCloseMidFrame(p []byte) (int, error) {
	c.mu.Lock()
	trip := !c.tripped && len(p) > 1
	if trip {
		c.tripped = true
	}
	c.mu.Unlock()
	if !trip {
		return c.inner.Write(p)
	}
	cut := len(p) / 2
	if c.plan.N > 0 && c.plan.N < int64(len(p)) {
		cut = int(c.plan.N)
	}
	n, _ := c.inner.Write(p[:cut])
	c.Close()
	return n, ErrInjected
}

// writeCorrupt flips one byte of the first write, then passes through.
func (c *Conn) writeCorrupt(p []byte) (int, error) {
	c.mu.Lock()
	trip := !c.tripped && len(p) > 0
	if trip {
		c.tripped = true
	}
	c.mu.Unlock()
	if !trip {
		return c.inner.Write(p)
	}
	off := int(c.plan.N)
	if off >= len(p) {
		off = len(p) - 1
	}
	corrupted := make([]byte, len(p))
	copy(corrupted, p)
	corrupted[off] ^= 0xFF
	return c.inner.Write(corrupted)
}

func (c *Conn) account(n int) {
	c.mu.Lock()
	c.written += int64(n)
	c.mu.Unlock()
}

// Close closes the underlying connection once.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.inner.Close()
}

// Closed reports whether the connection has been closed (by a fault, the
// peer, or the harness).
func (c *Conn) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// LocalAddr returns the wrapped connection's local address.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr returns the wrapped connection's remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline forwards to the wrapped connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline forwards to the wrapped connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline forwards to the wrapped connection.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// Listener wraps a net.Listener, applying a scripted Plan to each
// accepted connection and tracking the live wrapped connections so
// harnesses can kill them at will.
type Listener struct {
	inner net.Listener
	plans func(i int) Plan

	mu    sync.Mutex
	next  int
	conns []*Conn
}

var _ net.Listener = (*Listener)(nil)

// Wrap decorates a listener. plans maps the i-th accepted connection
// (0-based) to its fault plan; a nil plans injects nothing.
func Wrap(ln net.Listener, plans func(i int) Plan) *Listener {
	return &Listener{inner: ln, plans: plans}
}

// Accept accepts the next connection and applies its scripted plan.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	plan := Plan{}
	if l.plans != nil {
		plan = l.plans(l.next)
	}
	l.next++
	fc := NewConn(conn, plan)
	l.conns = append(l.conns, fc)
	l.mu.Unlock()
	return fc, nil
}

// Close closes the underlying listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr returns the underlying listener address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Accepted returns how many connections have been accepted.
func (l *Listener) Accepted() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// CloseRandom closes one random live accepted connection, reporting
// whether one was found. The PRNG is caller-seeded for determinism.
func (l *Listener) CloseRandom(rng *rand.Rand) bool {
	l.mu.Lock()
	live := make([]*Conn, 0, len(l.conns))
	for _, c := range l.conns {
		if !c.Closed() {
			live = append(live, c)
		}
	}
	var victim *Conn
	if len(live) > 0 {
		victim = live[rng.Intn(len(live))]
	}
	l.mu.Unlock()
	if victim == nil {
		return false
	}
	victim.Close()
	return true
}

// Script returns a deterministic per-connection plan function that cycles
// through the given plans in order, seeded so harnesses can also shuffle
// deterministically. An empty plans list injects nothing.
func Script(plans ...Plan) func(i int) Plan {
	return func(i int) Plan {
		if len(plans) == 0 {
			return Plan{}
		}
		return plans[i%len(plans)]
	}
}
