package faults

import (
	"runtime"
	"testing"
	"time"
)

// GuardGoroutines snapshots the goroutine count and registers a cleanup
// that fails the test if the count has not returned to (near) the
// baseline — a dependency-free stand-in for goleak, shared by every
// suite that asserts background work (fault injectors, pre-warm boots,
// reapers) does not outlive its owner. The retry loop absorbs
// goroutines that are legitimately still winding down (the vclock
// dispatcher exits asynchronously once its heap drains).
func GuardGoroutines(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var after int
		for {
			runtime.GC()
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if after > before {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
		}
	})
}
