package faults

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"
)

// tcpPair returns a connected client/server TCP pair on loopback.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	type res struct {
		conn net.Conn
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		conn, err := ln.Accept()
		ch <- res{conn, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("accept: %v", r.err)
	}
	t.Cleanup(func() { client.Close(); r.conn.Close() })
	return client, r.conn
}

func TestNonePassesThrough(t *testing.T) {
	client, server := tcpPair(t)
	fc := NewConn(server, Plan{Mode: None})
	go fc.Write([]byte("hello"))
	buf := make([]byte, 5)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != "hello" {
		t.Errorf("read %q", buf)
	}
}

func TestDropAfterN(t *testing.T) {
	client, server := tcpPair(t)
	fc := NewConn(server, Plan{Mode: DropAfterN, N: 4})
	n, err := fc.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != 4 {
		t.Errorf("wrote %d bytes, want 4", n)
	}
	got, _ := io.ReadAll(client)
	if string(got) != "0123" {
		t.Errorf("peer read %q, want 0123", got)
	}
	// Further writes fail immediately.
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("post-drop write err = %v", err)
	}
}

func TestCloseMidFrame(t *testing.T) {
	client, server := tcpPair(t)
	fc := NewConn(server, Plan{Mode: CloseMidFrame})
	frame := []byte("0123456789")
	n, err := fc.Write(frame)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != len(frame)/2 {
		t.Errorf("wrote %d, want %d", n, len(frame)/2)
	}
	got, _ := io.ReadAll(client)
	if len(got) != len(frame)/2 {
		t.Errorf("peer read %d bytes, want %d", len(got), len(frame)/2)
	}
}

func TestCorruptFrameFlipsOneByte(t *testing.T) {
	client, server := tcpPair(t)
	fc := NewConn(server, Plan{Mode: CorruptFrame, N: 2})
	payload := []byte("KAASKAAS")
	go func() {
		fc.Write(payload)
		fc.Close()
	}()
	got, err := io.ReadAll(client)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if bytes.Equal(got, payload) {
		t.Error("stream not corrupted")
	}
	diff := 0
	for i := range got {
		if got[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ, want exactly 1", diff)
	}
	if got[2] != payload[2]^0xFF {
		t.Errorf("corrupted byte = %x, want %x", got[2], payload[2]^0xFF)
	}
}

func TestSlowWriteDeliversEverything(t *testing.T) {
	client, server := tcpPair(t)
	fc := NewConn(server, Plan{Mode: SlowWrite, Chunk: 3, Delay: time.Millisecond})
	payload := []byte("0123456789")
	go func() {
		fc.Write(payload)
		fc.Close()
	}()
	start := time.Now()
	got, err := io.ReadAll(client)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("read %q", got)
	}
	// 10 bytes in 3-byte chunks = 4 writes, 3 sleeps.
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Errorf("slow write took %v, want >= 3ms", elapsed)
	}
}

func TestStallDelaysIO(t *testing.T) {
	client, server := tcpPair(t)
	fc := NewConn(server, Plan{Mode: Stall, Delay: 20 * time.Millisecond})
	go fc.Write([]byte("x"))
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("stalled write arrived in %v, want >= ~20ms", elapsed)
	}
}

func TestListenerAppliesScript(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ln := Wrap(raw, Script(Plan{Mode: None}, Plan{Mode: DropAfterN, N: 1}))
	defer ln.Close()

	accepted := make(chan net.Conn, 2)
	go func() {
		for i := 0; i < 2; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer c.Close()
	}
	first := (<-accepted).(*Conn)
	second := (<-accepted).(*Conn)
	if first.plan.Mode != None || second.plan.Mode != DropAfterN {
		t.Errorf("plans = %v, %v", first.plan.Mode, second.plan.Mode)
	}
	if ln.Accepted() != 2 {
		t.Errorf("Accepted = %d", ln.Accepted())
	}
}

func TestCloseRandomIsDeterministic(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ln := Wrap(raw, nil)
	defer ln.Close()
	go func() {
		for {
			if _, err := ln.Accept(); err != nil {
				return
			}
		}
	}()
	conns := make([]net.Conn, 3)
	for i := range conns {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		conns[i] = c
		defer c.Close()
	}
	// Wait for all accepts.
	deadline := time.Now().Add(2 * time.Second)
	for ln.Accepted() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("accepts did not complete")
		}
		time.Sleep(time.Millisecond)
	}

	rng := rand.New(rand.NewSource(7))
	closed := 0
	for ln.CloseRandom(rng) {
		closed++
	}
	if closed != 3 {
		t.Errorf("closed %d conns, want 3", closed)
	}
}
