package faults

import "sync"

// FailRepairer is the device surface the flapper drives; accel.Device
// implements it. Fail marks the device failed (in-flight and future
// operations on it error), Repair brings it back.
type FailRepairer interface {
	Fail()
	Repair()
}

// DeviceFlapper scripts fail/repair cycles on one device for chaos
// tests and the overload benchmark. Like the connection faults in this
// package, it is fully deterministic: the caller decides exactly when
// the device goes down and comes back (typically keyed off modeled
// time or invocation hooks), and the flapper keeps the transition
// counts so assertions don't have to.
type DeviceFlapper struct {
	dev FailRepairer

	mu      sync.Mutex
	down    bool
	fails   int
	repairs int
}

// NewDeviceFlapper wraps a device (healthy, not yet failed).
func NewDeviceFlapper(dev FailRepairer) *DeviceFlapper {
	return &DeviceFlapper{dev: dev}
}

// Fail takes the device down. Idempotent: repeated calls while down are
// not counted as new transitions.
func (f *DeviceFlapper) Fail() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return
	}
	f.down = true
	f.fails++
	f.dev.Fail()
}

// Repair brings the device back. Idempotent while the device is up.
func (f *DeviceFlapper) Repair() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.down {
		return
	}
	f.down = false
	f.repairs++
	f.dev.Repair()
}

// Flap performs one full fail/repair cycle, leaving the device healthy.
func (f *DeviceFlapper) Flap() {
	f.Fail()
	f.Repair()
}

// Down reports whether the device is currently failed.
func (f *DeviceFlapper) Down() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down
}

// Cycles returns how many fail and repair transitions have been driven.
func (f *DeviceFlapper) Cycles() (fails, repairs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fails, f.repairs
}
