package faults

import (
	"context"
	"sync"
	"time"

	"kaas/internal/vclock"
)

// FailRepairer is the device surface the flapper drives; accel.Device
// implements it. Fail marks the device failed (in-flight and future
// operations on it error), Repair brings it back.
type FailRepairer interface {
	Fail()
	Repair()
}

// DeviceFlapper scripts fail/repair cycles on one device for chaos
// tests and the overload benchmark. Like the connection faults in this
// package, it is fully deterministic: the caller decides exactly when
// the device goes down and comes back (typically keyed off modeled
// time or invocation hooks), and the flapper keeps the transition
// counts so assertions don't have to.
type DeviceFlapper struct {
	dev FailRepairer

	mu      sync.Mutex
	down    bool
	fails   int
	repairs int
}

// NewDeviceFlapper wraps a device (healthy, not yet failed).
func NewDeviceFlapper(dev FailRepairer) *DeviceFlapper {
	return &DeviceFlapper{dev: dev}
}

// Fail takes the device down. Idempotent: repeated calls while down are
// not counted as new transitions.
func (f *DeviceFlapper) Fail() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return
	}
	f.down = true
	f.fails++
	f.dev.Fail()
}

// Repair brings the device back. Idempotent while the device is up.
func (f *DeviceFlapper) Repair() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.down {
		return
	}
	f.down = false
	f.repairs++
	f.dev.Repair()
}

// Flap performs one full fail/repair cycle, leaving the device healthy.
func (f *DeviceFlapper) Flap() {
	f.Fail()
	f.Repair()
}

// Down reports whether the device is currently failed.
func (f *DeviceFlapper) Down() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down
}

// Cycles returns how many fail and repair transitions have been driven.
func (f *DeviceFlapper) Cycles() (fails, repairs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fails, f.repairs
}

// FlapSchedule scripts a finite fail/repair sequence in modeled time.
// The schedule is fully determined by its parameters — no randomness —
// so a scenario that runs it is reproducible by construction.
type FlapSchedule struct {
	// Delay is the modeled time before the first failure.
	Delay time.Duration
	// Cycles is how many fail/repair pairs to drive.
	Cycles int
	// Down is how long the device stays failed per cycle.
	Down time.Duration
	// Up is how long the device stays healthy between cycles.
	Up time.Duration
}

// Transitions returns the fail+repair transition count the schedule
// drives when it runs to completion.
func (s FlapSchedule) Transitions() int { return 2 * s.Cycles }

// Run drives the schedule against the clock, blocking until every cycle
// completes or ctx is cancelled. The waits are cancellable — a cancelled
// scenario does not strand this goroutine sleeping out the schedule —
// and the device is always left repaired on every exit path, so a
// cancelled chaos run cannot leak a permanently-failed device into
// subsequent tests. Returns ctx.Err when cancelled early, else nil.
func (f *DeviceFlapper) Run(ctx context.Context, clock vclock.Clock, s FlapSchedule) error {
	// Whatever happens below (including a cancellation between Fail and
	// the repair wait), leave the device healthy.
	defer f.Repair()
	if !waitModeled(ctx, clock, s.Delay) {
		return ctx.Err()
	}
	for i := 0; i < s.Cycles; i++ {
		f.Fail()
		if !waitModeled(ctx, clock, s.Down) {
			return ctx.Err()
		}
		f.Repair()
		if i < s.Cycles-1 && !waitModeled(ctx, clock, s.Up) {
			return ctx.Err()
		}
	}
	return nil
}

// waitModeled blocks for d of modeled time, returning false if ctx is
// done first. AfterFunc + select rather than Clock.Sleep: Sleep is not
// interruptible, and a cancelled chaos scenario must not hold its
// goroutine until a modeled deadline that may be minutes of wall time
// away on a real-time clock.
func waitModeled(ctx context.Context, clock vclock.Clock, d time.Duration) bool {
	if ctx.Err() != nil {
		return false
	}
	if d <= 0 {
		return true
	}
	done := make(chan struct{})
	t := clock.AfterFunc(d, func() { close(done) })
	select {
	case <-ctx.Done():
		t.Stop()
		return false
	case <-done:
		return true
	}
}
