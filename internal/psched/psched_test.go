package psched

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"kaas/internal/vclock"
)

// testClock returns a heavily scaled clock so modeled seconds cost
// microseconds of wall time.
func testClock() vclock.Clock { return vclock.Scaled(100000) }

func mustEngine(t *testing.T, clock vclock.Clock, cfg Config) *Engine {
	t.Helper()
	e, err := New(clock, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(e.Close)
	return e
}

// near reports whether got is within tol (relative) of want.
func near(got, want time.Duration, tol float64) bool {
	if want == 0 {
		return got < 50*time.Millisecond
	}
	diff := math.Abs(float64(got - want))
	return diff <= tol*float64(want)
}

func TestNewRejectsBadCapacity(t *testing.T) {
	for _, capacity := range []float64{0, -1} {
		if _, err := New(testClock(), Config{Capacity: capacity}); err == nil {
			t.Errorf("New(capacity=%v) succeeded, want error", capacity)
		}
	}
}

func TestSingleJobServiceTime(t *testing.T) {
	e := mustEngine(t, testClock(), Config{Capacity: 100})
	// 500 units at 100/s = 5 modeled seconds.
	elapsed, err := e.Run(context.Background(), 500)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !near(elapsed, 5*time.Second, 0.2) {
		t.Errorf("elapsed = %v, want ~5s", elapsed)
	}
}

func TestZeroWorkCompletesImmediately(t *testing.T) {
	e := mustEngine(t, testClock(), Config{Capacity: 1})
	elapsed, err := e.Run(context.Background(), 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if elapsed != 0 {
		t.Errorf("elapsed = %v, want 0", elapsed)
	}
}

func TestNegativeWorkRejected(t *testing.T) {
	e := mustEngine(t, testClock(), Config{Capacity: 1})
	if _, err := e.Run(context.Background(), -1); err == nil {
		t.Error("Run(-1) succeeded, want error")
	}
}

func TestProcessorSharingSlowdown(t *testing.T) {
	// Scaled(1000) rather than testClock(): the ~10s expectation assumes
	// the jobs overlap fully, and at scale 100000 the µs-level skew
	// between the two goroutines' submissions costs modeled seconds.
	e := mustEngine(t, vclock.Scaled(1000), Config{Capacity: 100})
	// Two simultaneous jobs of 500 units each share capacity, so both
	// should take ~10 modeled seconds instead of 5.
	var wg sync.WaitGroup
	results := make([]time.Duration, 2)
	for i := range 2 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, err := e.Run(context.Background(), 500)
			if err != nil {
				t.Errorf("Run: %v", err)
			}
			results[i] = d
		}()
	}
	wg.Wait()
	for i, d := range results {
		if !near(d, 10*time.Second, 0.3) {
			t.Errorf("job %d elapsed = %v, want ~10s under 2-way sharing", i, d)
		}
	}
}

func TestFIFOSerializes(t *testing.T) {
	// A gentler scale than testClock(): the expected ~10s queue+service
	// time assumes both jobs arrive together, and at scale 100000 even a
	// few µs of goroutine-wakeup skew (tens of µs under -race) is worth
	// whole modeled seconds of queue time.
	e := mustEngine(t, vclock.Scaled(1000), Config{Capacity: 100, Discipline: FIFO})
	start := make(chan struct{})
	var wg sync.WaitGroup
	elapsedCh := make(chan time.Duration, 2)
	for range 2 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			d, err := e.Run(context.Background(), 500)
			if err != nil {
				t.Errorf("Run: %v", err)
			}
			elapsedCh <- d
		}()
	}
	close(start)
	wg.Wait()
	close(elapsedCh)
	var all []time.Duration
	for d := range elapsedCh {
		all = append(all, d)
	}
	// One job takes ~5s, the other waits behind it: ~10s total.
	if all[0] > all[1] {
		all[0], all[1] = all[1], all[0]
	}
	if !near(all[0], 5*time.Second, 0.3) {
		t.Errorf("first job = %v, want ~5s", all[0])
	}
	if !near(all[1], 10*time.Second, 0.3) {
		t.Errorf("second job = %v, want ~10s (5s queue + 5s service)", all[1])
	}
}

func TestMaxActiveQueues(t *testing.T) {
	e := mustEngine(t, testClock(), Config{Capacity: 100, MaxActive: 2})
	// Three jobs of 500; two run concurrently (10s each under sharing),
	// third starts when one finishes.
	var wg sync.WaitGroup
	durations := make([]time.Duration, 3)
	for i := range 3 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, err := e.Run(context.Background(), 500)
			if err != nil {
				t.Errorf("Run: %v", err)
			}
			durations[i] = d
		}()
		time.Sleep(2 * time.Millisecond) // preserve submission order
	}
	wg.Wait()
	u := e.Usage()
	if u.PeakActive > 2 {
		t.Errorf("PeakActive = %d, want <= 2", u.PeakActive)
	}
	if u.Active != 0 || u.Queued != 0 {
		t.Errorf("after completion Active=%d Queued=%d, want 0/0", u.Active, u.Queued)
	}
}

func TestUsageAccounting(t *testing.T) {
	e := mustEngine(t, testClock(), Config{Capacity: 100})
	if _, err := e.Run(context.Background(), 1000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	u := e.Usage()
	if math.Abs(u.WorkDone-1000) > 1 {
		t.Errorf("WorkDone = %v, want ~1000", u.WorkDone)
	}
	if !near(u.BusyTime, 10*time.Second, 0.3) {
		t.Errorf("BusyTime = %v, want ~10s", u.BusyTime)
	}
	if u.PeakActive != 1 {
		t.Errorf("PeakActive = %d, want 1", u.PeakActive)
	}
}

func TestContextCancellation(t *testing.T) {
	e := mustEngine(t, testClock(), Config{Capacity: 1})
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := e.Run(ctx, 1e12) // effectively forever
		errCh <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	u := e.Usage()
	if u.Active != 0 {
		t.Errorf("Active = %d after cancel, want 0", u.Active)
	}
}

func TestCancelledJobFreesCapacity(t *testing.T) {
	e := mustEngine(t, testClock(), Config{Capacity: 100, MaxActive: 1})
	ctx, cancel := context.WithCancel(context.Background())
	blocked := make(chan error, 1)
	go func() {
		_, err := e.Run(ctx, 1e12)
		blocked <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	<-blocked
	// The slot must now be free for a short job.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := e.Run(context.Background(), 100); err != nil {
			t.Errorf("Run after cancel: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("job stuck behind cancelled job")
	}
}

func TestCloseReleasesWaiters(t *testing.T) {
	e, err := New(testClock(), Config{Capacity: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := e.Run(context.Background(), 1e12)
		errCh <- err
	}()
	time.Sleep(5 * time.Millisecond)
	e.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrEngineClosed) {
			t.Errorf("err = %v, want ErrEngineClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after Close")
	}
	// Submitting after close fails fast.
	if _, err := e.Run(context.Background(), 1); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("Run after close = %v, want ErrEngineClosed", err)
	}
	e.Close() // idempotent
}

func TestManyConcurrentJobsConserveWork(t *testing.T) {
	e := mustEngine(t, testClock(), Config{Capacity: 1000})
	const n = 20
	const each = 500.0
	var wg sync.WaitGroup
	for range n {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Run(context.Background(), each); err != nil {
				t.Errorf("Run: %v", err)
			}
		}()
	}
	wg.Wait()
	u := e.Usage()
	if math.Abs(u.WorkDone-n*each) > n*each*0.01 {
		t.Errorf("WorkDone = %v, want ~%v", u.WorkDone, n*each)
	}
	// Total busy time should be close to total work / capacity since the
	// engine is work conserving: 20*500/1000 = 10s.
	if !near(u.BusyTime, 10*time.Second, 0.35) {
		t.Errorf("BusyTime = %v, want ~10s", u.BusyTime)
	}
}

func TestDisciplineString(t *testing.T) {
	tests := []struct {
		d    Discipline
		want string
	}{
		{ProcessorSharing, "processor-sharing"},
		{FIFO, "fifo"},
		{Discipline(99), "discipline(99)"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.d), got, tt.want)
		}
	}
}

func TestLateArrivalSharesRemainder(t *testing.T) {
	// Job A (1000 units) runs alone for ~5s, then B (250) arrives.
	// They share: B needs 250 at 50/s = 5s; A has 500 left, shares for
	// 5s (250 done), then finishes the last 250 alone in 2.5s.
	// Totals: A ~12.5s, B ~5s.
	e := mustEngine(t, vclock.Scaled(1000), Config{Capacity: 100})
	var aDur, bDur time.Duration
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		d, err := e.Run(context.Background(), 1000)
		if err != nil {
			t.Errorf("Run A: %v", err)
		}
		aDur = d
	}()
	time.Sleep(5 * time.Millisecond) // ~5 modeled seconds at scale 1000
	go func() {
		defer wg.Done()
		d, err := e.Run(context.Background(), 250)
		if err != nil {
			t.Errorf("Run B: %v", err)
		}
		bDur = d
	}()
	wg.Wait()
	if !near(aDur, 12500*time.Millisecond, 0.3) {
		t.Errorf("A = %v, want ~12.5s", aDur)
	}
	if !near(bDur, 5*time.Second, 0.3) {
		t.Errorf("B = %v, want ~5s", bDur)
	}
}

// TestWorkConservationProperty: for random job mixes under either
// discipline, total work served equals total work submitted and busy time
// never exceeds (total work / capacity) by more than rounding.
func TestWorkConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		discipline := ProcessorSharing
		if r.Intn(2) == 1 {
			discipline = FIFO
		}
		capacity := 100 + r.Float64()*900
		e, err := New(vclock.Scaled(20000), Config{Capacity: capacity, Discipline: discipline})
		if err != nil {
			return false
		}
		defer e.Close()

		n := 3 + r.Intn(6)
		var totalWork float64
		var wg sync.WaitGroup
		ok := true
		var mu sync.Mutex
		for i := 0; i < n; i++ {
			work := 10 + r.Float64()*500
			totalWork += work
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := e.Run(context.Background(), work); err != nil {
					mu.Lock()
					ok = false
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if !ok {
			return false
		}
		u := e.Usage()
		if math.Abs(u.WorkDone-totalWork) > totalWork*0.02 {
			return false
		}
		minBusy := totalWork / capacity
		// Busy time is at least the work-conserving minimum (within noise)
		// and bounded above by a generous jitter allowance.
		return u.BusyTime.Seconds() > minBusy*0.9 &&
			u.BusyTime.Seconds() < minBusy*3+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
