// Package psched implements work-conserving scheduling engines used to
// model contended accelerator resources.
//
// An Engine represents one resource (a GPU's execution units, a PCIe link,
// an FPGA fabric) with a fixed service capacity expressed in abstract work
// units per modeled second. Jobs carry an amount of work; the engine
// advances them according to its discipline and completes them after the
// exact amount of modeled time dictated by the contention it observed:
//
//   - ProcessorSharing: all admitted jobs progress simultaneously, each at
//     capacity/k when k jobs are active. This models space-shared devices
//     such as GPUs under MPS, where concurrent kernels divide the SMs.
//   - FIFO: jobs run one at a time at full capacity in arrival order. This
//     models exclusive (time-shared) devices.
//
// The engine is event driven: on every arrival and departure it recomputes
// per-job progress and schedules a timer for the next completion, so job
// finish times are exact under the fluid model regardless of wall-clock
// jitter. All timing flows through a vclock.Clock, so the same engine runs
// in scaled simulation time or real time.
package psched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"kaas/internal/vclock"
)

// Discipline selects how an Engine shares its capacity among jobs.
type Discipline int

const (
	// ProcessorSharing divides capacity equally among all active jobs.
	ProcessorSharing Discipline = iota + 1
	// FIFO serves one job at a time at full capacity.
	FIFO
)

// String returns the discipline name.
func (d Discipline) String() string {
	switch d {
	case ProcessorSharing:
		return "processor-sharing"
	case FIFO:
		return "fifo"
	default:
		return fmt.Sprintf("discipline(%d)", int(d))
	}
}

// ErrEngineClosed is returned by Run when the engine has been shut down.
var ErrEngineClosed = errors.New("psched: engine closed")

// workEpsilon absorbs floating-point residue when deciding completion.
const workEpsilon = 1e-9

// Config describes an Engine.
type Config struct {
	// Capacity is the service rate in work units per modeled second.
	// It must be positive.
	Capacity float64
	// Discipline selects the sharing model. Defaults to ProcessorSharing.
	Discipline Discipline
	// MaxActive caps the number of concurrently served jobs; further
	// arrivals queue. Zero means unlimited (FIFO always serves one at a
	// time regardless).
	MaxActive int
}

// Engine is a single simulated resource. It is safe for concurrent use.
type Engine struct {
	clock vclock.Clock
	cfg   Config

	mu         sync.Mutex
	active     []*job
	queue      []*job
	lastUpdate time.Time
	timer      vclock.Timer
	closed     bool

	// accounting
	busy     time.Duration // total modeled time with >=1 active job
	workDone float64       // total work units served
	peak     int           // max concurrently active jobs observed
}

type job struct {
	work      float64
	remaining float64
	done      chan struct{}
	cancelled bool
	enqueued  time.Time
	started   time.Time // when first admitted to service
	finished  time.Time
}

// New creates an Engine from cfg, using clock for all timing.
func New(clock vclock.Clock, cfg Config) (*Engine, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("psched: capacity must be positive, got %v", cfg.Capacity)
	}
	if cfg.Discipline == 0 {
		cfg.Discipline = ProcessorSharing
	}
	if cfg.Discipline == FIFO {
		cfg.MaxActive = 1
	}
	return &Engine{
		clock:      clock,
		cfg:        cfg,
		lastUpdate: clock.Now(),
	}, nil
}

// Capacity returns the configured service rate in work units per second.
func (e *Engine) Capacity() float64 { return e.cfg.Capacity }

// Usage is a snapshot of the engine's accounting counters.
type Usage struct {
	// BusyTime is the total modeled time during which at least one job
	// was being served.
	BusyTime time.Duration
	// WorkDone is the total work served so far.
	WorkDone float64
	// Active is the number of jobs currently in service.
	Active int
	// Queued is the number of jobs waiting for admission.
	Queued int
	// PeakActive is the maximum concurrency observed.
	PeakActive int
}

// Usage returns current accounting counters. The busy-time integral is
// advanced to the present before sampling.
func (e *Engine) Usage() Usage {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.advanceLocked(e.clock.Now())
	return Usage{
		BusyTime:   e.busy,
		WorkDone:   e.workDone,
		Active:     len(e.active),
		Queued:     len(e.queue),
		PeakActive: e.peak,
	}
}

// Run submits a job with the given amount of work and blocks until the
// engine has served it, the context is cancelled, or the engine is closed.
// It returns the modeled time spent waiting plus in service.
func (e *Engine) Run(ctx context.Context, work float64) (time.Duration, error) {
	if work < 0 {
		return 0, fmt.Errorf("psched: negative work %v", work)
	}
	j := &job{
		work:      work,
		remaining: work,
		done:      make(chan struct{}),
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, ErrEngineClosed
	}
	now := e.clock.Now()
	e.advanceLocked(now)
	j.enqueued = now
	if work <= workEpsilon {
		// Zero-cost job: complete immediately without perturbing state.
		e.mu.Unlock()
		return 0, nil
	}
	e.queue = append(e.queue, j)
	e.admitLocked(now)
	e.rescheduleLocked(now)
	e.mu.Unlock()

	select {
	case <-j.done:
		e.mu.Lock()
		elapsed := j.finished.Sub(j.enqueued)
		closed := e.closed && j.finished.IsZero()
		e.mu.Unlock()
		if closed {
			return 0, ErrEngineClosed
		}
		return elapsed, nil
	case <-ctx.Done():
		e.cancel(j)
		return e.clock.Now().Sub(j.enqueued), ctx.Err()
	}
}

// Close shuts the engine down, releasing all waiting jobs with
// ErrEngineClosed. It is safe to call multiple times.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.advanceLocked(e.clock.Now())
	e.closed = true
	if e.timer != nil {
		e.timer.Stop()
		e.timer = nil
	}
	for _, j := range e.active {
		close(j.done)
	}
	for _, j := range e.queue {
		close(j.done)
	}
	e.active = nil
	e.queue = nil
}

// cancel withdraws a job after its context was cancelled.
func (e *Engine) cancel(j *job) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	now := e.clock.Now()
	e.advanceLocked(now)
	j.cancelled = true
	e.active = removeJob(e.active, j)
	e.queue = removeJob(e.queue, j)
	e.admitLocked(now)
	e.rescheduleLocked(now)
}

func removeJob(list []*job, j *job) []*job {
	for i, x := range list {
		if x == j {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// advanceLocked integrates progress from lastUpdate to now. It steps
// through intermediate completion deadlines so that jobs finish at their
// exact fluid-model times even when the wall-clock timer fires late: a
// late timer must not grant extra progress at a stale sharing rate, nor
// record an inflated finish time.
func (e *Engine) advanceLocked(now time.Time) {
	for now.After(e.lastUpdate) {
		if len(e.active) == 0 {
			e.lastUpdate = now
			return
		}
		perJob := e.perJobRateLocked()
		minRemaining := e.active[0].remaining
		for _, j := range e.active[1:] {
			if j.remaining < minRemaining {
				minRemaining = j.remaining
			}
		}
		windowSec := now.Sub(e.lastUpdate).Seconds()
		needSec := minRemaining / perJob
		if needSec*float64(time.Second) < 1 {
			// Sub-nanosecond residue: finish the nearly-done jobs in place
			// so the loop always makes progress.
			for _, j := range e.active {
				if j.remaining <= minRemaining+workEpsilon {
					j.remaining = 0
				}
			}
			e.completeLocked(e.lastUpdate)
			continue
		}
		var step time.Time
		if needSec < windowSec {
			step = e.lastUpdate.Add(time.Duration(needSec * float64(time.Second)))
		} else {
			step = now
		}
		elapsed := step.Sub(e.lastUpdate)
		progressed := perJob * elapsed.Seconds()
		for _, j := range e.active {
			j.remaining -= progressed
			if j.remaining < 0 {
				j.remaining = 0
			}
		}
		e.busy += elapsed
		e.workDone += progressed * float64(len(e.active))
		e.lastUpdate = step
		e.completeLocked(step)
	}
}

// perJobRateLocked returns the service rate each active job receives.
func (e *Engine) perJobRateLocked() float64 {
	n := len(e.active)
	if n == 0 {
		return 0
	}
	switch e.cfg.Discipline {
	case FIFO:
		return e.cfg.Capacity
	default:
		return e.cfg.Capacity / float64(n)
	}
}

// completeLocked finishes all jobs whose work is exhausted and admits
// queued jobs into freed slots.
func (e *Engine) completeLocked(now time.Time) {
	remaining := e.active[:0]
	for _, j := range e.active {
		if j.remaining <= workEpsilon {
			j.finished = now
			close(j.done)
			continue
		}
		remaining = append(remaining, j)
	}
	e.active = remaining
	e.admitLocked(now)
}

// admitLocked moves queued jobs into service while slots are available.
func (e *Engine) admitLocked(now time.Time) {
	for len(e.queue) > 0 {
		if e.cfg.MaxActive > 0 && len(e.active) >= e.cfg.MaxActive {
			return
		}
		j := e.queue[0]
		e.queue = e.queue[1:]
		j.started = now
		e.active = append(e.active, j)
		if len(e.active) > e.peak {
			e.peak = len(e.active)
		}
	}
}

// rescheduleLocked (re)arms the completion timer for the earliest finishing
// active job.
func (e *Engine) rescheduleLocked(now time.Time) {
	if e.timer != nil {
		e.timer.Stop()
		e.timer = nil
	}
	if len(e.active) == 0 || e.closed {
		return
	}
	minRemaining := e.active[0].remaining
	for _, j := range e.active[1:] {
		if j.remaining < minRemaining {
			minRemaining = j.remaining
		}
	}
	perJob := e.perJobRateLocked()
	needSec := minRemaining / perJob
	// Clamp to avoid time.Duration overflow for enormous jobs; the timer
	// simply re-arms when it fires early relative to the fluid deadline.
	const maxTimerSec = float64(time.Hour) * 24 * 365 / float64(time.Second)
	if needSec > maxTimerSec {
		needSec = maxTimerSec
	}
	e.timer = e.clock.AfterFunc(time.Duration(needSec*float64(time.Second)), e.onTimer)
}

// onTimer advances state when a completion deadline is reached.
func (e *Engine) onTimer() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	now := e.clock.Now()
	e.advanceLocked(now)
	e.rescheduleLocked(now)
}
