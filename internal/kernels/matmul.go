package kernels

import (
	"fmt"
	"math/rand"

	"kaas/internal/accel"
	"kaas/internal/tensor"
)

// MatMul is the paper's primary benchmark kernel: C = A×B for square
// N×N matrices (§5.1). Parameters:
//
//	n    — matrix dimension (default 500)
//	seed — RNG seed for input generation (default 1)
//
// Execute multiplies real matrices capped at matMulExecCap and returns the
// Frobenius norm of the product as a checksum; Cost charges 2N³ FLOPs and
// 3N² elements of transfer at the requested N.
type MatMul struct {
	kind accel.Kind
}

// matMulExecCap bounds the dimension actually multiplied on the host.
const matMulExecCap = 192

// NewMatMul creates a matmul kernel targeting the given device kind
// (the paper runs it on GPUs and, for the energy study, CPUs).
func NewMatMul(kind accel.Kind) *MatMul {
	return &MatMul{kind: kind}
}

var _ Kernel = (*MatMul)(nil)

// Name implements Kernel.
func (m *MatMul) Name() string {
	if m.kind == accel.CPU {
		return "matmul-cpu"
	}
	return "matmul"
}

// Kind implements Kernel.
func (m *MatMul) Kind() accel.Kind { return m.kind }

// Cost implements Kernel.
func (m *MatMul) Cost(req *Request) (Cost, error) {
	n := req.Params.Int("n", 500)
	if n <= 0 {
		return Cost{}, fmt.Errorf("matmul: invalid n %d", n)
	}
	elem := int64(n) * int64(n) * 8
	return Cost{
		Work:         tensor.MatMulFLOPs(n, n, n),
		BytesIn:      2 * elem,
		BytesOut:     elem,
		DeviceMemory: 3 * elem,
	}, nil
}

// Execute implements Kernel.
func (m *MatMul) Execute(req *Request) (*Response, error) {
	n := req.Params.Int("n", 500)
	if n <= 0 {
		return nil, fmt.Errorf("matmul: invalid n %d", n)
	}
	eff := capDim(n, matMulExecCap)
	rng := rand.New(rand.NewSource(int64(req.Params.Int("seed", 1))))
	a, err := tensor.Randn(rng, eff, eff)
	if err != nil {
		return nil, fmt.Errorf("matmul: %w", err)
	}
	b, err := tensor.Randn(rng, eff, eff)
	if err != nil {
		return nil, fmt.Errorf("matmul: %w", err)
	}
	c := tensor.MatMul(a, b)
	return &Response{Values: map[string]float64{
		"checksum":    c.Frob(),
		"n":           float64(n),
		"effective_n": float64(eff),
	}}, nil
}
