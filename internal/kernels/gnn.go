package kernels

import (
	"fmt"
	"math/rand"
	"time"

	"kaas/internal/accel"
	"kaas/internal/nn"
)

// GNNTraining performs node-classification training of a two-layer graph
// convolutional network on a synthetic citation graph — the paper's GNN
// kernel, which adapts the number of training iterations as N (§5.6.1).
// Parameters:
//
//	n      — training iterations (default 100)
//	nodes  — graph size (default 200)
//	hidden — GCN hidden width (default 16)
//	seed   — RNG seed
//
// Execute trains for a capped number of iterations and reports loss and
// accuracy; Cost charges the full iteration count. Model construction and
// graph loading are SetupWork paid once per warm runner.
type GNNTraining struct{}

// gnnExecCap bounds the iterations actually trained on the host.
const gnnExecCap = 40

// NewGNNTraining creates the GNN kernel.
func NewGNNTraining() *GNNTraining { return &GNNTraining{} }

var _ Kernel = (*GNNTraining)(nil)

// Name implements Kernel.
func (*GNNTraining) Name() string { return "gnn" }

// Kind implements Kernel.
func (*GNNTraining) Kind() accel.Kind { return accel.GPU }

// gnnStepFLOPs estimates one full-batch training step's FLOPs for the
// configured graph without building it.
func gnnStepFLOPs(nodes, features, hidden, classes int) float64 {
	n, f, h, c := float64(nodes), float64(features), float64(hidden), float64(classes)
	forward := 2*n*n*f + 2*n*f*h + 2*n*n*h + 2*n*h*c
	return 3 * forward
}

// Cost implements Kernel.
func (*GNNTraining) Cost(req *Request) (Cost, error) {
	iters := req.Params.Int("n", 100)
	nodes := req.Params.Int("nodes", 200)
	hidden := req.Params.Int("hidden", 16)
	if iters <= 0 || nodes <= 0 || hidden <= 0 {
		return Cost{}, fmt.Errorf("gnn: invalid n=%d nodes=%d hidden=%d", iters, nodes, hidden)
	}
	const features, classes = 16, 4
	graphBytes := int64(nodes)*int64(nodes)*8 + int64(nodes)*features*8
	return Cost{
		Work:         float64(iters) * gnnStepFLOPs(nodes, features, hidden, classes),
		SetupTime:    50 * time.Millisecond, // dataset load + model build
		BytesIn:      graphBytes,
		BytesOut:     1024,
		DeviceMemory: 2 * graphBytes,
	}, nil
}

// Execute implements Kernel.
func (*GNNTraining) Execute(req *Request) (*Response, error) {
	iters := req.Params.Int("n", 100)
	nodes := req.Params.Int("nodes", 200)
	hidden := req.Params.Int("hidden", 16)
	if iters <= 0 || nodes <= 0 || hidden <= 0 {
		return nil, fmt.Errorf("gnn: invalid n=%d nodes=%d hidden=%d", iters, nodes, hidden)
	}
	seed := int64(req.Params.Int("seed", 1))
	eff := capDim(iters, gnnExecCap)

	graph, err := nn.SyntheticCitationGraph(seed, nodes, 16, 4)
	if err != nil {
		return nil, fmt.Errorf("gnn: %w", err)
	}
	model, err := nn.NewGCN(rand.New(rand.NewSource(seed)), graph, hidden)
	if err != nil {
		return nil, fmt.Errorf("gnn: %w", err)
	}
	loss, err := model.Train(eff, 0.3)
	if err != nil {
		return nil, fmt.Errorf("gnn: %w", err)
	}
	return &Response{Values: map[string]float64{
		"loss":        loss,
		"accuracy":    model.Accuracy(),
		"n":           float64(iters),
		"effective_n": float64(eff),
	}}, nil
}
