package kernels

import (
	"fmt"
	"math/rand"

	"kaas/internal/accel"
	"kaas/internal/tensor"
)

// Histogram computes a 256-bin histogram of byte values over a large
// array — the paper's FPGA Histogram kernel (§5.6.2; array length
// 2,097,504). Parameters:
//
//	n    — array length (default 2097504)
//	seed — RNG seed
//
// Execute bins a real array (length capped at histExecCap); Cost charges
// one operation per requested element plus the input transfer.
type Histogram struct{}

// histExecCap bounds the array length processed on the host.
const histExecCap = 1 << 21

// NewHistogram creates the histogram kernel.
func NewHistogram() *Histogram { return &Histogram{} }

var _ Kernel = (*Histogram)(nil)

// Name implements Kernel.
func (*Histogram) Name() string { return "histogram" }

// Kind implements Kernel.
func (*Histogram) Kind() accel.Kind { return accel.FPGA }

// Cost implements Kernel.
func (*Histogram) Cost(req *Request) (Cost, error) {
	n := req.Params.Int("n", 2097504)
	if n <= 0 {
		return Cost{}, fmt.Errorf("histogram: invalid n %d", n)
	}
	return Cost{
		Work:         float64(n),
		BytesIn:      int64(n) * 4,
		BytesOut:     256 * 4,
		DeviceMemory: int64(n)*4 + 256*4,
	}, nil
}

// Execute implements Kernel.
func (*Histogram) Execute(req *Request) (*Response, error) {
	n := req.Params.Int("n", 2097504)
	if n <= 0 {
		return nil, fmt.Errorf("histogram: invalid n %d", n)
	}
	eff := capDim(n, histExecCap)
	rng := rand.New(rand.NewSource(int64(req.Params.Int("seed", 1))))

	bins := make([]float64, 256)
	for i := 0; i < eff; i++ {
		bins[rng.Intn(256)]++
	}
	var maxBin, maxCount float64
	var total float64
	for b, c := range bins {
		total += c
		if c > maxCount {
			maxCount = c
			maxBin = float64(b)
		}
	}
	return &Response{
		Values: map[string]float64{
			"total":       total,
			"max_bin":     maxBin,
			"max_count":   maxCount,
			"n":           float64(n),
			"effective_n": float64(eff),
		},
		Data: Float64sToBytes(bins),
	}, nil
}

// BitmapConversion converts an RGB image to a downsampled grayscale
// bitmap — the bitmap-conversion task of the paper's motivating workflow
// (Fig. 1) and FPGA evaluation (§5.6.2). Parameters:
//
//	height, width — image dimensions (default 1080×1920)
//	factor        — downsampling factor (default 2)
//	seed          — RNG seed for the synthetic input image
//
// If the request carries a Data payload it is decoded as interleaved RGB
// float64 pixels. Execute performs the real luminance conversion and
// average-pooling downsample at a capped resolution.
type BitmapConversion struct{}

// bitmapExecCap bounds each image dimension processed on the host.
const bitmapExecCap = 512

// NewBitmapConversion creates the bitmap-conversion kernel.
func NewBitmapConversion() *BitmapConversion { return &BitmapConversion{} }

var _ Kernel = (*BitmapConversion)(nil)

// Name implements Kernel.
func (*BitmapConversion) Name() string { return "bitmap" }

// Kind implements Kernel.
func (*BitmapConversion) Kind() accel.Kind { return accel.FPGA }

// Cost implements Kernel.
func (*BitmapConversion) Cost(req *Request) (Cost, error) {
	h := req.Params.Int("height", 1080)
	w := req.Params.Int("width", 1920)
	f := req.Params.Int("factor", 2)
	if h <= 0 || w <= 0 || f <= 0 {
		return Cost{}, fmt.Errorf("bitmap: invalid height=%d width=%d factor=%d", h, w, f)
	}
	pixels := int64(h) * int64(w)
	return Cost{
		// The PyLog pipeline streams one pixel per cycle, so device work
		// is one unit per pixel (like the histogram kernel).
		Work:         float64(pixels),
		BytesIn:      pixels * 3, // 8-bit RGB
		BytesOut:     pixels / int64(f*f),
		DeviceMemory: pixels * 4,
	}, nil
}

// Execute implements Kernel.
func (*BitmapConversion) Execute(req *Request) (*Response, error) {
	h := req.Params.Int("height", 1080)
	w := req.Params.Int("width", 1920)
	f := req.Params.Int("factor", 2)
	if h <= 0 || w <= 0 || f <= 0 {
		return nil, fmt.Errorf("bitmap: invalid height=%d width=%d factor=%d", h, w, f)
	}
	effH := capDim(h, bitmapExecCap)
	effW := capDim(w, bitmapExecCap)
	if effH/f == 0 || effW/f == 0 {
		return nil, fmt.Errorf("bitmap: factor %d too large for %dx%d", f, effH, effW)
	}

	// Obtain RGB input: payload if provided, synthetic otherwise.
	var rgb []float64
	if len(req.Data) > 0 {
		vals, err := BytesToFloat64s(req.Data)
		if err != nil {
			return nil, fmt.Errorf("bitmap: decode image: %w", err)
		}
		if len(vals) < effH*effW*3 {
			return nil, fmt.Errorf("bitmap: payload has %d values, need %d", len(vals), effH*effW*3)
		}
		rgb = vals
	} else {
		rng := rand.New(rand.NewSource(int64(req.Params.Int("seed", 1))))
		rgb = make([]float64, effH*effW*3)
		for i := range rgb {
			rgb[i] = rng.Float64()
		}
	}

	// ITU-R BT.601 luminance.
	gray, err := tensor.NewImage(effH, effW)
	if err != nil {
		return nil, fmt.Errorf("bitmap: %w", err)
	}
	for y := 0; y < effH; y++ {
		for x := 0; x < effW; x++ {
			base := (y*effW + x) * 3
			gray.Set(y, x, 0.299*rgb[base]+0.587*rgb[base+1]+0.114*rgb[base+2])
		}
	}
	small, err := tensor.Downsample(gray, f)
	if err != nil {
		return nil, fmt.Errorf("bitmap: %w", err)
	}
	var sum float64
	for _, v := range small.Pix() {
		sum += v
	}
	return &Response{
		Values: map[string]float64{
			"mean_luma":  sum / float64(len(small.Pix())),
			"out_height": float64(small.H()),
			"out_width":  float64(small.W()),
		},
		Data: Float64sToBytes(small.Pix()),
	}, nil
}
