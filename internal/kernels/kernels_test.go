package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"kaas/internal/accel"
)

func TestSuiteNamesUniqueAndResolvable(t *testing.T) {
	suite := Suite()
	if len(suite) < 12 {
		t.Fatalf("suite has %d kernels, want >= 12", len(suite))
	}
	seen := make(map[string]bool, len(suite))
	for _, k := range suite {
		if k.Name() == "" {
			t.Error("kernel with empty name")
		}
		if seen[k.Name()] {
			t.Errorf("duplicate kernel name %q", k.Name())
		}
		seen[k.Name()] = true
		got, err := ByName(k.Name())
		if err != nil {
			t.Errorf("ByName(%q): %v", k.Name(), err)
		}
		if got.Name() != k.Name() {
			t.Errorf("ByName(%q) returned %q", k.Name(), got.Name())
		}
		if k.Kind() == 0 {
			t.Errorf("kernel %q has zero kind", k.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded")
	}
}

func TestSuiteDefaultRequestsWork(t *testing.T) {
	for _, k := range Suite() {
		k := k
		t.Run(k.Name(), func(t *testing.T) {
			req := &Request{Params: Params{}}
			cost, err := k.Cost(req)
			if err != nil {
				t.Fatalf("Cost: %v", err)
			}
			if cost.Work <= 0 {
				t.Errorf("Cost.Work = %v, want > 0", cost.Work)
			}
			if cost.BytesIn < 0 || cost.BytesOut < 0 || cost.DeviceMemory < 0 {
				t.Errorf("negative cost fields: %+v", cost)
			}
			resp, err := k.Execute(req)
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			if resp == nil || len(resp.Values) == 0 {
				t.Error("Execute returned no values")
			}
			for name, v := range resp.Values {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("value %q = %v", name, v)
				}
			}
		})
	}
}

func TestSuiteCostMonotonicInGranularity(t *testing.T) {
	// Larger task granularity must never cost less work.
	for _, k := range Suite() {
		small, err := k.Cost(&Request{Params: Params{"n": 64}})
		if err != nil {
			t.Fatalf("%s small cost: %v", k.Name(), err)
		}
		large, err := k.Cost(&Request{Params: Params{"n": 512}})
		if err != nil {
			t.Fatalf("%s large cost: %v", k.Name(), err)
		}
		if large.Work < small.Work {
			t.Errorf("%s: work decreased with size (%v -> %v)", k.Name(), small.Work, large.Work)
		}
	}
}

func TestSuiteRejectsInvalidGranularity(t *testing.T) {
	// Each kernel's primary size parameter, set to an invalid value.
	invalid := map[string]Params{
		"matmul":     {"n": -5},
		"dtw":        {"n": -5},
		"ga":         {"n": -5},
		"gnn":        {"n": -5},
		"mci":        {"n": -5},
		"qc":         {"n": -5},
		"histogram":  {"n": -5},
		"conv2d":     {"n": -5},
		"bitmap":     {"height": -5},
		"resnet":     {"batch": -5},
		"preprocess": {"height": -5},
		"vqe":        {"iterations": -5},
	}
	for _, k := range Suite() {
		params, ok := invalid[k.Name()]
		if !ok {
			t.Errorf("no invalid-params case for kernel %q", k.Name())
			continue
		}
		if _, err := k.Cost(&Request{Params: params}); err == nil {
			t.Errorf("%s: Cost(%v) succeeded", k.Name(), params)
		}
		if _, err := k.Execute(&Request{Params: params}); err == nil {
			t.Errorf("%s: Execute(%v) succeeded", k.Name(), params)
		}
	}
}

func TestParamsHelpers(t *testing.T) {
	p := Params{"a": 3.7, "b": -2}
	if got := p.Int("a", 9); got != 3 {
		t.Errorf("Int(a) = %d, want 3", got)
	}
	if got := p.Int("missing", 9); got != 9 {
		t.Errorf("Int(missing) = %d, want 9", got)
	}
	if got := p.Float("b", 0); got != -2 {
		t.Errorf("Float(b) = %v, want -2", got)
	}
	if got := p.Float("missing", 1.5); got != 1.5 {
		t.Errorf("Float(missing) = %v, want 1.5", got)
	}
	c := p.Clone()
	c["a"] = 99
	if p["a"] != 3.7 {
		t.Error("Clone shares storage")
	}
}

func TestFloat64sBytesRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		enc := Float64sToBytes(vals)
		dec, err := BytesToFloat64s(enc)
		if err != nil {
			return false
		}
		if len(dec) != len(vals) {
			return false
		}
		for i := range vals {
			// NaN round-trips bit-exactly.
			if math.Float64bits(dec[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	if _, err := BytesToFloat64s([]byte{1, 2, 3}); err == nil {
		t.Error("odd-length payload succeeded")
	}
}

func TestMatMulDeterministicChecksum(t *testing.T) {
	k := NewMatMul(accel.GPU)
	req := &Request{Params: Params{"n": 64, "seed": 7}}
	a, err := k.Execute(req)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	b, err := k.Execute(req)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if a.Values["checksum"] != b.Values["checksum"] {
		t.Error("same seed produced different checksums")
	}
	other, _ := k.Execute(&Request{Params: Params{"n": 64, "seed": 8}})
	if other.Values["checksum"] == a.Values["checksum"] {
		t.Error("different seeds produced identical checksums")
	}
}

func TestMatMulCPUVariantName(t *testing.T) {
	cpu := NewMatMul(accel.CPU)
	if cpu.Name() != "matmul-cpu" || cpu.Kind() != accel.CPU {
		t.Errorf("cpu variant: name=%q kind=%v", cpu.Name(), cpu.Kind())
	}
}

func TestMatMulExecutionCap(t *testing.T) {
	k := NewMatMul(accel.GPU)
	resp, err := k.Execute(&Request{Params: Params{"n": 10000}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if got := resp.Values["effective_n"]; got != matMulExecCap {
		t.Errorf("effective_n = %v, want %v", got, matMulExecCap)
	}
	cost, _ := k.Cost(&Request{Params: Params{"n": 10000}})
	if want := 2.0 * 10000 * 10000 * 10000; cost.Work != want {
		t.Errorf("Cost.Work = %v, want %v (full size)", cost.Work, want)
	}
}

func TestSoftDTWDistanceProperties(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	// Identical sequences have distance <= 0 under soft-DTW (soft-min
	// makes it slightly negative) and near zero for smooth gamma.
	d, err := SoftDTWDistance(a, a, 0.01)
	if err != nil {
		t.Fatalf("SoftDTWDistance: %v", err)
	}
	if math.Abs(d) > 0.1 {
		t.Errorf("self-distance = %v, want ~0", d)
	}
	far := []float64{100, 100, 100, 100}
	df, _ := SoftDTWDistance(a, far, 0.01)
	if df <= d {
		t.Errorf("distance to far sequence (%v) not larger than self (%v)", df, d)
	}
	if _, err := SoftDTWDistance(nil, a, 1); err == nil {
		t.Error("empty sequence succeeded")
	}
	if _, err := SoftDTWDistance(a, a, 0); err == nil {
		t.Error("gamma=0 succeeded")
	}
}

func TestGeneticAlgorithmImproves(t *testing.T) {
	k := NewGeneticAlgorithm()
	resp, err := k.Execute(&Request{Params: Params{"n": 256, "generations": 10, "seed": 5}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if resp.Values["best_fitness"] >= resp.Values["first_fitness"] {
		t.Errorf("GA did not improve: first=%v best=%v",
			resp.Values["first_fitness"], resp.Values["best_fitness"])
	}
}

func TestGeneticAlgorithmPayloadPopulation(t *testing.T) {
	k := NewGeneticAlgorithm()
	n := 16
	pop := make([]float64, n*gaVectorLen)
	for i := range pop {
		pop[i] = 0.001 // near the Rastrigin optimum
	}
	resp, err := k.Execute(&Request{
		Params: Params{"n": float64(n), "generations": 2},
		Data:   Float64sToBytes(pop),
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if resp.Values["best_fitness"] > 1 {
		t.Errorf("seeded near optimum but best=%v", resp.Values["best_fitness"])
	}
	// Short payloads fail cleanly.
	if _, err := k.Execute(&Request{
		Params: Params{"n": float64(n)},
		Data:   Float64sToBytes(pop[:10]),
	}); err == nil {
		t.Error("short payload succeeded")
	}
	if _, err := k.Execute(&Request{
		Params: Params{"n": float64(n)},
		Data:   []byte{1, 2, 3},
	}); err == nil {
		t.Error("corrupt payload succeeded")
	}
}

func TestMonteCarloConverges(t *testing.T) {
	k := NewMonteCarlo()
	resp, err := k.Execute(&Request{Params: Params{"n": 500000, "seed": 2}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	got := resp.Values["estimate"]
	want := math.Log(10)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("estimate = %v, want ~%v", got, want)
	}
}

func TestGNNTrainingLearns(t *testing.T) {
	k := NewGNNTraining()
	resp, err := k.Execute(&Request{Params: Params{"n": 40, "nodes": 100, "seed": 3}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if acc := resp.Values["accuracy"]; acc < 0.6 {
		t.Errorf("accuracy = %v, want >= 0.6", acc)
	}
}

func TestQuantumSimNormPreserved(t *testing.T) {
	k := NewQuantumSim()
	resp, err := k.Execute(&Request{Params: Params{"n": 200, "qubits": 8}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if math.Abs(resp.Values["norm"]-1) > 1e-9 {
		t.Errorf("norm = %v, want 1", resp.Values["norm"])
	}
	if _, err := k.Cost(&Request{Params: Params{"qubits": 99}}); err == nil {
		t.Error("qubits=99 succeeded")
	}
}

func TestHistogramTotalMatches(t *testing.T) {
	k := NewHistogram()
	resp, err := k.Execute(&Request{Params: Params{"n": 10000}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if resp.Values["total"] != 10000 {
		t.Errorf("total = %v, want 10000", resp.Values["total"])
	}
	bins, err := BytesToFloat64s(resp.Data)
	if err != nil {
		t.Fatalf("decode bins: %v", err)
	}
	if len(bins) != 256 {
		t.Errorf("bins = %d, want 256", len(bins))
	}
	var sum float64
	for _, b := range bins {
		if b < 0 {
			t.Fatal("negative bin")
		}
		sum += b
	}
	if sum != 10000 {
		t.Errorf("bin sum = %v, want 10000", sum)
	}
}

func TestBitmapConversionOutput(t *testing.T) {
	k := NewBitmapConversion()
	resp, err := k.Execute(&Request{Params: Params{"height": 64, "width": 64, "factor": 2}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if resp.Values["out_height"] != 32 || resp.Values["out_width"] != 32 {
		t.Errorf("output dims %vx%v, want 32x32", resp.Values["out_height"], resp.Values["out_width"])
	}
	if l := resp.Values["mean_luma"]; l < 0 || l > 1 {
		t.Errorf("mean luma = %v, want in [0,1]", l)
	}
	// Known payload: pure white image -> luma 1 everywhere.
	white := make([]float64, 64*64*3)
	for i := range white {
		white[i] = 1
	}
	resp, err = k.Execute(&Request{
		Params: Params{"height": 64, "width": 64, "factor": 2},
		Data:   Float64sToBytes(white),
	})
	if err != nil {
		t.Fatalf("Execute with payload: %v", err)
	}
	if math.Abs(resp.Values["mean_luma"]-1) > 1e-9 {
		t.Errorf("white image luma = %v, want 1", resp.Values["mean_luma"])
	}
	if _, err := k.Execute(&Request{
		Params: Params{"height": 64, "width": 64},
		Data:   []byte{1},
	}); err == nil {
		t.Error("corrupt payload succeeded")
	}
}

func TestConv2DAlgorithmSwitch(t *testing.T) {
	k := NewConv2D()
	direct, err := k.Cost(&Request{Params: Params{"n": 2048}})
	if err != nil {
		t.Fatalf("Cost: %v", err)
	}
	switched, err := k.Cost(&Request{Params: Params{"n": 4096}})
	if err != nil {
		t.Fatalf("Cost: %v", err)
	}
	// Above the switch the transform algorithm's compilation must
	// undercut the direct program: the 4096 compile should be well below
	// the naive 4x scaling of the 2048 compile.
	ratio := float64(switched.SetupTime) / float64(direct.SetupTime)
	if ratio >= 4 {
		t.Errorf("compile-time ratio %v, want < 4 (algorithm switch)", ratio)
	}
	if direct.SetupTime <= 0 {
		t.Error("conv2d should model per-shape compilation time")
	}
}

func TestConv2DExecut(t *testing.T) {
	k := NewConv2D()
	resp, err := k.Execute(&Request{Params: Params{"n": 64, "ksize": 3, "seed": 2}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if resp.Values["out_dim"] != 62 {
		t.Errorf("out_dim = %v, want 62", resp.Values["out_dim"])
	}
	if resp.Values["energy"] <= 0 {
		t.Error("zero output energy")
	}
	if _, err := k.Execute(&Request{Params: Params{"n": 4, "ksize": 9}}); err == nil {
		t.Error("kernel larger than input succeeded")
	}
}

func TestResNetInference(t *testing.T) {
	k := NewResNetInference()
	resp, err := k.Execute(&Request{Params: Params{"batch": 8, "seed": 4}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	classes, err := BytesToFloat64s(resp.Data)
	if err != nil {
		t.Fatalf("decode classes: %v", err)
	}
	if len(classes) != 8 {
		t.Errorf("classes = %d, want 8", len(classes))
	}
	for _, c := range classes {
		if c < 0 || c > 9 {
			t.Fatalf("class %v out of range", c)
		}
	}
	cost, _ := k.Cost(&Request{Params: Params{"batch": 8}})
	if cost.SetupTime <= 0 {
		t.Error("resnet should have setup time (weight loading)")
	}
}

func TestImagePreprocess(t *testing.T) {
	k := NewImagePreprocess()
	resp, err := k.Execute(&Request{Params: Params{"height": 256, "width": 256, "crop": 128}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if resp.Values["crop_size"] != 128 {
		t.Errorf("crop_size = %v, want 128", resp.Values["crop_size"])
	}
	if m := resp.Values["mean"]; m <= 0 || m >= 1 {
		t.Errorf("mean = %v, want in (0,1)", m)
	}
	pix, err := BytesToFloat64s(resp.Data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(pix) != 128*128 {
		t.Errorf("output pixels = %d, want %d", len(pix), 128*128)
	}
}

func TestVQEKernelFindsGroundState(t *testing.T) {
	k := NewVQEKernel()
	resp, err := k.Execute(&Request{Params: Params{"iterations": 50, "seed": 3}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if e := resp.Values["energy"]; math.Abs(e-(-1.8573)) > 0.02 {
		t.Errorf("energy = %v, want ~-1.8573", e)
	}
	if resp.Values["evaluations"] <= 0 {
		t.Error("no estimator evaluations")
	}
	cost, _ := k.Cost(&Request{Params: Params{"iterations": 10}})
	if cost.SetupTime <= 0 {
		t.Error("vqe should have setup time (transpilation)")
	}
}

func TestVQEEstimatorCallCount(t *testing.T) {
	// 1 initial + iters*(2*params+1)
	if got := vqeEstimatorCalls(10, 6); got != 1+10*13 {
		t.Errorf("vqeEstimatorCalls = %d, want %d", got, 1+10*13)
	}
}
