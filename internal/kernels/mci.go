package kernels

import (
	"fmt"
	"math"
	"math/rand"

	"kaas/internal/accel"
)

// MonteCarlo estimates the definite integral ∫₁¹⁰ 1/x dx = ln 10 with N
// uniform samples — the paper's MCI kernel (§5.6.1). Parameters:
//
//	n    — sample count (default 65536)
//	seed — RNG seed
//
// Execute draws real samples (capped at mciExecCap); Cost charges ~8
// FLOPs per requested sample.
type MonteCarlo struct{}

// mciExecCap bounds samples actually drawn on the host.
const mciExecCap = 1 << 20

// NewMonteCarlo creates the MCI kernel.
func NewMonteCarlo() *MonteCarlo { return &MonteCarlo{} }

var _ Kernel = (*MonteCarlo)(nil)

// Name implements Kernel.
func (*MonteCarlo) Name() string { return "mci" }

// Kind implements Kernel.
func (*MonteCarlo) Kind() accel.Kind { return accel.GPU }

// Cost implements Kernel.
func (*MonteCarlo) Cost(req *Request) (Cost, error) {
	n := req.Params.Int("n", 65536)
	if n <= 0 {
		return Cost{}, fmt.Errorf("mci: invalid n %d", n)
	}
	return Cost{
		Work:         float64(n) * 8,
		BytesIn:      64,
		BytesOut:     16,
		DeviceMemory: 1 << 20,
	}, nil
}

// Execute implements Kernel.
func (*MonteCarlo) Execute(req *Request) (*Response, error) {
	n := req.Params.Int("n", 65536)
	if n <= 0 {
		return nil, fmt.Errorf("mci: invalid n %d", n)
	}
	eff := capDim(n, mciExecCap)
	rng := rand.New(rand.NewSource(int64(req.Params.Int("seed", 1))))

	const lo, hi = 1.0, 10.0
	var sum float64
	for i := 0; i < eff; i++ {
		x := lo + rng.Float64()*(hi-lo)
		sum += 1 / x
	}
	estimate := sum / float64(eff) * (hi - lo)
	return &Response{Values: map[string]float64{
		"estimate":    estimate,
		"exact":       math.Log(hi / lo),
		"n":           float64(n),
		"effective_n": float64(eff),
	}}, nil
}
