// Package kernels implements the accelerator kernels evaluated in the
// paper: matrix multiplication, soft dynamic time warping, a genetic
// algorithm, graph-neural-network training, Monte Carlo integration, a
// quantum-circuit simulator, histogram computation, bitmap conversion, 2D
// convolution, ResNet-style inference, image preprocessing, and the VQE
// estimator.
//
// Every kernel does two things:
//
//   - Execute performs the real computation in Go and returns verifiable
//     results. For task granularities whose full-size computation is
//     infeasible on a test machine (a 20,000² matrix multiply is 16
//     TFLOPs), Execute computes a capped-size instance of the same
//     problem — the arithmetic is real, only the problem dimension is
//     clamped — and reports the effective size it used.
//
//   - Cost reports the modeled device work of the *requested* size (FLOPs
//     or an equivalent work metric, plus transfer bytes and memory
//     footprint). The accelerator simulators charge modeled time from
//     this, so experiment timings reflect the paper's full task sizes.
package kernels

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"kaas/internal/accel"
)

// Params carries named numeric invocation parameters (task granularity,
// seeds, iteration counts).
type Params map[string]float64

// Int reads an integer parameter with a default.
func (p Params) Int(key string, def int) int {
	if v, ok := p[key]; ok {
		return int(v)
	}
	return def
}

// Float reads a float parameter with a default.
func (p Params) Float(key string, def float64) float64 {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// Clone returns a copy of the params.
func (p Params) Clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Request is one kernel invocation: parameters plus an optional raw data
// payload (delivered in-band over the wire or out-of-band via shared
// memory).
type Request struct {
	Params Params
	Data   []byte
	// Tenant names the invoking tenant for fair queueing. Empty means
	// the caller did not identify itself; the server normalizes that to
	// its default tenant.
	Tenant string
}

// Response is a kernel result: named scalar outputs plus an optional raw
// payload.
type Response struct {
	Values map[string]float64
	Data   []byte
}

// Cost is the modeled device cost of one invocation.
type Cost struct {
	// Work is the device work in the device's work units (FLOPs for
	// dense kernels, amplitude operations for quantum simulation).
	Work float64
	// SetupTime is one-time per-runner setup beyond runtime init (model
	// weight loading, circuit transpilation), as a modeled duration. A
	// warm runner has already paid it; a fresh process pays it every
	// task.
	SetupTime time.Duration
	// BytesIn and BytesOut are host-to-device and device-to-host
	// transfer sizes.
	BytesIn, BytesOut int64
	// DeviceMemory is the resident device allocation during execution.
	DeviceMemory int64
}

// Kernel is a registrable accelerator kernel.
type Kernel interface {
	// Name is the registry key, e.g. "matmul".
	Name() string
	// Kind is the accelerator kind the kernel targets.
	Kind() accel.Kind
	// Cost models the device cost of a request at its full size.
	Cost(req *Request) (Cost, error)
	// Execute runs the computation (possibly size-capped) on the host.
	Execute(req *Request) (*Response, error)
}

// Suite returns one instance of every kernel in the paper's evaluation,
// targeting its default device kind.
func Suite() []Kernel {
	return []Kernel{
		NewMatMul(accel.GPU),
		NewSoftDTW(),
		NewGeneticAlgorithm(),
		NewGNNTraining(),
		NewMonteCarlo(),
		NewQuantumSim(),
		NewHistogram(),
		NewBitmapConversion(),
		NewConv2D(),
		NewResNetInference(),
		NewImagePreprocess(),
		NewVQEKernel(),
	}
}

// ByName returns the kernel with the given name from the default suite.
func ByName(name string) (Kernel, error) {
	for _, k := range Suite() {
		if k.Name() == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("kernels: unknown kernel %q", name)
}

// Retarget returns a kernel identical to k but targeting a different
// device kind — the paper's portability story: the same kernel code can
// be deployed on whatever hardware serves it best (a CPU fallback, a
// newer GPU generation) without changing the application.
func Retarget(k Kernel, kind accel.Kind) Kernel {
	return &retargeted{Kernel: k, kind: kind}
}

type retargeted struct {
	Kernel
	kind accel.Kind
}

// Kind implements Kernel.
func (r *retargeted) Kind() accel.Kind { return r.kind }

// Float64sToBytes encodes a float64 slice little-endian for data payloads.
func Float64sToBytes(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// BytesToFloat64s decodes a little-endian float64 payload.
func BytesToFloat64s(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("kernels: payload length %d not a multiple of 8", len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// capDim clamps a requested dimension to the execution cap, returning the
// effective dimension used for real computation.
func capDim(n, cap int) int {
	if n > cap {
		return cap
	}
	if n < 1 {
		return 1
	}
	return n
}
