package kernels

import (
	"fmt"

	"kaas/internal/accel"
)

// Fuse combines two kernels that target the same accelerator kind into
// one kernel, eliminating the intermediate device-to-host-to-device data
// movement between them — the kernel-fusion optimization the paper's §6
// identifies as future work. The fused kernel's input transfer is the
// first kernel's, its output transfer is the second's, and the
// intermediate payload stays resident on the device.
//
// Both kernels receive the same request parameters; the first kernel's
// output payload becomes the second kernel's input payload. The fused
// response carries the second kernel's payload and both kernels' scalar
// values, prefixed with each kernel's name.
func Fuse(name string, first, second Kernel) (Kernel, error) {
	if name == "" {
		return nil, fmt.Errorf("kernels: fused kernel needs a name")
	}
	if first == nil || second == nil {
		return nil, fmt.Errorf("kernels: fuse requires two kernels")
	}
	if first.Kind() != second.Kind() {
		return nil, fmt.Errorf("kernels: cannot fuse %s kernel %q with %s kernel %q",
			first.Kind(), first.Name(), second.Kind(), second.Name())
	}
	return &fused{name: name, first: first, second: second}, nil
}

// fused is a device-resident composition of two kernels.
type fused struct {
	name          string
	first, second Kernel
}

var _ Kernel = (*fused)(nil)

// Name implements Kernel.
func (f *fused) Name() string { return f.name }

// Kind implements Kernel.
func (f *fused) Kind() accel.Kind { return f.first.Kind() }

// Cost implements Kernel: the sum of both stages' device work with the
// intermediate transfer elided.
func (f *fused) Cost(req *Request) (Cost, error) {
	ca, err := f.first.Cost(req)
	if err != nil {
		return Cost{}, fmt.Errorf("fused %s: first stage: %w", f.name, err)
	}
	cb, err := f.second.Cost(req)
	if err != nil {
		return Cost{}, fmt.Errorf("fused %s: second stage: %w", f.name, err)
	}
	mem := ca.DeviceMemory
	if cb.DeviceMemory > mem {
		mem = cb.DeviceMemory
	}
	return Cost{
		Work:      ca.Work + cb.Work,
		SetupTime: ca.SetupTime + cb.SetupTime,
		BytesIn:   ca.BytesIn,
		BytesOut:  cb.BytesOut,
		// Both stages' working sets coexist briefly at the handoff.
		DeviceMemory: mem + minInt64(ca.DeviceMemory, cb.DeviceMemory)/2,
	}, nil
}

// Execute implements Kernel: run the first stage, feed its payload to the
// second, and merge the scalar outputs.
func (f *fused) Execute(req *Request) (*Response, error) {
	respA, err := f.first.Execute(req)
	if err != nil {
		return nil, fmt.Errorf("fused %s: first stage: %w", f.name, err)
	}
	reqB := &Request{Params: req.Params, Data: respA.Data}
	respB, err := f.second.Execute(reqB)
	if err != nil {
		return nil, fmt.Errorf("fused %s: second stage: %w", f.name, err)
	}
	values := make(map[string]float64, len(respA.Values)+len(respB.Values))
	for k, v := range respA.Values {
		values[f.first.Name()+"."+k] = v
	}
	for k, v := range respB.Values {
		values[f.second.Name()+"."+k] = v
	}
	return &Response{Values: values, Data: respB.Data}, nil
}

// SavedTransfer reports the intermediate bytes a fused execution avoids
// moving compared to running the stages separately.
func (f *fused) SavedTransfer(req *Request) (int64, error) {
	ca, err := f.first.Cost(req)
	if err != nil {
		return 0, err
	}
	cb, err := f.second.Cost(req)
	if err != nil {
		return 0, err
	}
	return ca.BytesOut + cb.BytesIn, nil
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
