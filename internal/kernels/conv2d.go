package kernels

import (
	"fmt"
	"math/rand"
	"time"

	"kaas/internal/accel"
	"kaas/internal/tensor"
)

// Conv2D performs a 2D convolution on an N×N matrix — the paper's TPU
// kernel (§5.6.3, tf.nn.conv2d). Parameters:
//
//	n      — input dimension (default 1024)
//	ksize  — square filter size (default 5)
//	seed   — RNG seed
//
// Execute convolves a real capped-size input. Cost charges the raw
// convolution FLOPs as Work, and an N-dependent compilation cost as
// SetupTime: the framework (XLA) compiles a convolution program for each
// input shape, choosing a transform-based algorithm above
// conv2DAlgoSwitch — which reproduces the non-proportional TPU-time
// scaling the paper attributes to TensorFlow's internal algorithm
// selection (§5.6.3). A warm KaaS runner serves from the cached compiled
// program; the baseline recompiles every task.
type Conv2D struct{}

const (
	// conv2DExecCap bounds the input dimension convolved on the host.
	conv2DExecCap = 384
	// conv2DAlgoSwitch is the dimension above which the modeled
	// framework picks a transform-based convolution.
	conv2DAlgoSwitch = 4096
)

// NewConv2D creates the conv2d kernel.
func NewConv2D() *Conv2D { return &Conv2D{} }

var _ Kernel = (*Conv2D)(nil)

// Name implements Kernel.
func (*Conv2D) Name() string { return "conv2d" }

// Kind implements Kernel.
func (*Conv2D) Kind() accel.Kind { return accel.TPU }

// Cost implements Kernel.
func (*Conv2D) Cost(req *Request) (Cost, error) {
	n := req.Params.Int("n", 1024)
	k := req.Params.Int("ksize", 5)
	if n <= 0 || k <= 0 || k > n {
		return Cost{}, fmt.Errorf("conv2d: invalid n=%d ksize=%d", n, k)
	}
	elem := int64(n) * int64(n) * 8
	return Cost{
		Work:         tensor.Conv2DFLOPs(n, n, k, k),
		SetupTime:    conv2DCompileTime(n),
		BytesIn:      elem + int64(k)*int64(k)*8,
		BytesOut:     elem,
		DeviceMemory: 2 * elem,
	}, nil
}

// conv2DCompileTime models the framework's per-shape program compilation:
// proportional to N² for the direct algorithm, switching to a cheaper
// N²·log2(N) transform program above conv2DAlgoSwitch.
func conv2DCompileTime(n int) time.Duration {
	direct := float64(n) * float64(n) / 2.5e6
	secs := direct
	if n >= conv2DAlgoSwitch {
		log2n := 0.0
		for v := n; v > 1; v >>= 1 {
			log2n++
		}
		transform := float64(n) * float64(n) * log2n / 4e7
		if transform < secs {
			secs = transform
		}
	}
	return time.Duration(secs * float64(time.Second))
}

// Execute implements Kernel.
func (*Conv2D) Execute(req *Request) (*Response, error) {
	n := req.Params.Int("n", 1024)
	k := req.Params.Int("ksize", 5)
	if n <= 0 || k <= 0 || k > n {
		return nil, fmt.Errorf("conv2d: invalid n=%d ksize=%d", n, k)
	}
	eff := capDim(n, conv2DExecCap)
	if k > eff {
		k = eff
	}
	rng := rand.New(rand.NewSource(int64(req.Params.Int("seed", 1))))
	im, err := tensor.NewImage(eff, eff)
	if err != nil {
		return nil, fmt.Errorf("conv2d: %w", err)
	}
	for i := range im.Pix() {
		im.Pix()[i] = rng.NormFloat64()
	}
	filter, err := tensor.Randn(rng, k, k)
	if err != nil {
		return nil, fmt.Errorf("conv2d: %w", err)
	}
	out := tensor.Conv2DValid(im, filter)
	var sum float64
	for _, v := range out.Pix() {
		sum += v * v
	}
	return &Response{Values: map[string]float64{
		"energy":      sum,
		"out_dim":     float64(out.H()),
		"n":           float64(n),
		"effective_n": float64(eff),
	}}, nil
}
