package kernels

import (
	"hash/fnv"
	"time"

	"kaas/internal/accel"
)

// compileBase is the modeled JIT/compile cost and artifact footprint per
// accelerator kind. The durations follow the toolchains the paper's
// evaluation stack actually pays on a first invocation: numba's CUDA
// JIT takes seconds per kernel, XLA compilation for TPU programs is of
// the same order, quantum transpilation is a couple of seconds, and the
// FPGA figure models retrieving and loading a pre-built partial bitstream
// (full place-and-route is hours and is never on the invocation path).
var compileBase = map[accel.Kind]struct {
	d    time.Duration
	size int64
}{
	accel.CPU:  {800 * time.Millisecond, 2 << 20},
	accel.GPU:  {6 * time.Second, 8 << 20},
	accel.FPGA: {45 * time.Second, 32 << 20},
	accel.TPU:  {9 * time.Second, 16 << 20},
	accel.QPU:  {2500 * time.Millisecond, 1 << 20},
}

// CompileProfile models compiling kernel k for its target kind: the
// modeled JIT duration a cache miss pays and the compiled artifact's
// size in bytes. Both are deterministic per (kernel name, kind) — the
// name is folded through FNV-1a into a ±25% spread around the kind's
// base cost, so distinct kernels produce distinct artifact sizes (which
// is what makes byte-budget eviction behave realistically) without any
// run-to-run variance.
func CompileProfile(k Kernel) (time.Duration, int64) {
	base, ok := compileBase[k.Kind()]
	if !ok {
		base.d = time.Second
		base.size = 4 << 20
	}
	h := fnv.New64a()
	h.Write([]byte(k.Name()))
	h.Write([]byte{0x1f})
	h.Write([]byte(k.Kind().String()))
	// Map the digest to a factor in [0.75, 1.25).
	factor := 0.75 + float64(h.Sum64()%1000)/2000.0
	return time.Duration(float64(base.d) * factor), int64(float64(base.size) * factor)
}
