package kernels

import (
	"fmt"
	"math"
	"math/rand"

	"kaas/internal/accel"
)

// SoftDTW computes soft dynamic time warping distances (Cuturi & Blondel
// 2017) between pairs of random sequences — the paper's DTW kernel
// (§5.6.1). Parameters:
//
//	n     — sequence length (default 200)
//	batch — number of sequence pairs (default 200)
//	gamma — smoothing parameter (default 1.0)
//	seed  — RNG seed
//
// Execute runs the real O(n²) dynamic program per pair with the length
// capped at dtwExecCap; Cost charges batch × n² cell updates at roughly
// 10 FLOPs per cell.
type SoftDTW struct{}

// dtwExecCap bounds the sequence length computed on the host.
const dtwExecCap = 128

// NewSoftDTW creates the DTW kernel.
func NewSoftDTW() *SoftDTW { return &SoftDTW{} }

var _ Kernel = (*SoftDTW)(nil)

// Name implements Kernel.
func (*SoftDTW) Name() string { return "dtw" }

// Kind implements Kernel.
func (*SoftDTW) Kind() accel.Kind { return accel.GPU }

// Cost implements Kernel.
func (*SoftDTW) Cost(req *Request) (Cost, error) {
	n := req.Params.Int("n", 200)
	batch := req.Params.Int("batch", 200)
	if n <= 0 || batch <= 0 {
		return Cost{}, fmt.Errorf("dtw: invalid n=%d batch=%d", n, batch)
	}
	cells := float64(batch) * float64(n) * float64(n)
	bytes := int64(batch) * int64(n) * 2 * 8
	// Each DP cell computes a soft-min (exp/log) and has poor GPU
	// parallelism along the anti-diagonal, so its effective cost at the
	// device's nominal FLOP rate is far above its raw arithmetic.
	return Cost{
		Work:         cells * 2000,
		BytesIn:      bytes,
		BytesOut:     int64(batch) * 8,
		DeviceMemory: bytes + int64(n)*int64(n)*8,
	}, nil
}

// softMin computes -gamma * log(sum exp(-x_i/gamma)) stably.
func softMin(gamma float64, vals ...float64) float64 {
	minV := vals[0]
	for _, v := range vals[1:] {
		if v < minV {
			minV = v
		}
	}
	var sum float64
	for _, v := range vals {
		sum += math.Exp(-(v - minV) / gamma)
	}
	return minV - gamma*math.Log(sum)
}

// SoftDTWDistance computes the soft-DTW distance between two sequences.
func SoftDTWDistance(a, b []float64, gamma float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("dtw: empty sequence")
	}
	if gamma <= 0 {
		return 0, fmt.Errorf("dtw: gamma must be positive, got %v", gamma)
	}
	const inf = math.MaxFloat64 / 4
	prev := make([]float64, len(b)+1)
	cur := make([]float64, len(b)+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= len(a); i++ {
		cur[0] = inf
		for j := 1; j <= len(b); j++ {
			d := a[i-1] - b[j-1]
			cost := d * d
			cur[j] = cost + softMin(gamma, prev[j-1], prev[j], cur[j-1])
		}
		prev, cur = cur, prev
	}
	return prev[len(b)], nil
}

// Execute implements Kernel.
func (k *SoftDTW) Execute(req *Request) (*Response, error) {
	n := req.Params.Int("n", 200)
	batch := req.Params.Int("batch", 200)
	gamma := req.Params.Float("gamma", 1.0)
	if n <= 0 || batch <= 0 {
		return nil, fmt.Errorf("dtw: invalid n=%d batch=%d", n, batch)
	}
	if gamma <= 0 {
		return nil, fmt.Errorf("dtw: invalid gamma %v", gamma)
	}
	effN := capDim(n, dtwExecCap)
	effBatch := capDim(batch, 64)
	rng := rand.New(rand.NewSource(int64(req.Params.Int("seed", 1))))

	var total float64
	for p := 0; p < effBatch; p++ {
		a := make([]float64, effN)
		b := make([]float64, effN)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		d, err := SoftDTWDistance(a, b, gamma)
		if err != nil {
			return nil, err
		}
		total += d
	}
	return &Response{Values: map[string]float64{
		"mean_distance": total / float64(effBatch),
		"n":             float64(n),
		"effective_n":   float64(effN),
	}}, nil
}
