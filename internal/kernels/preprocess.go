package kernels

import (
	"fmt"
	"math/rand"

	"kaas/internal/accel"
	"kaas/internal/tensor"
)

// ImagePreprocess performs the CPU stage of the motivating workflow
// (Fig. 1): normalize a raw image, apply a denoising blur, and
// center-crop. Parameters:
//
//	height, width — input dimensions (default 1080×1920)
//	crop          — output side length (default 224)
//	seed          — RNG seed for the synthetic input
//
// Execute runs the real pipeline at a capped resolution.
type ImagePreprocess struct{}

// preprocessExecCap bounds each dimension processed on the host.
const preprocessExecCap = 512

// NewImagePreprocess creates the preprocessing kernel.
func NewImagePreprocess() *ImagePreprocess { return &ImagePreprocess{} }

var _ Kernel = (*ImagePreprocess)(nil)

// Name implements Kernel.
func (*ImagePreprocess) Name() string { return "preprocess" }

// Kind implements Kernel.
func (*ImagePreprocess) Kind() accel.Kind { return accel.CPU }

// Cost implements Kernel.
func (*ImagePreprocess) Cost(req *Request) (Cost, error) {
	h := req.Params.Int("height", 1080)
	w := req.Params.Int("width", 1920)
	crop := req.Params.Int("crop", 224)
	if h <= 0 || w <= 0 || crop <= 0 {
		return Cost{}, fmt.Errorf("preprocess: invalid height=%d width=%d crop=%d", h, w, crop)
	}
	pixels := int64(h) * int64(w)
	return Cost{
		Work:         float64(pixels) * 22, // normalize (2) + 3×3 blur (18) + crop copy (2)
		BytesIn:      pixels,
		BytesOut:     int64(crop) * int64(crop),
		DeviceMemory: 2 * pixels * 8,
	}, nil
}

// Execute implements Kernel.
func (*ImagePreprocess) Execute(req *Request) (*Response, error) {
	h := req.Params.Int("height", 1080)
	w := req.Params.Int("width", 1920)
	crop := req.Params.Int("crop", 224)
	if h <= 0 || w <= 0 || crop <= 0 {
		return nil, fmt.Errorf("preprocess: invalid height=%d width=%d crop=%d", h, w, crop)
	}
	effH := capDim(h, preprocessExecCap)
	effW := capDim(w, preprocessExecCap)
	effCrop := crop
	if effCrop > effH {
		effCrop = effH
	}
	if effCrop > effW {
		effCrop = effW
	}

	rng := rand.New(rand.NewSource(int64(req.Params.Int("seed", 1))))
	im, err := tensor.NewImage(effH, effW)
	if err != nil {
		return nil, fmt.Errorf("preprocess: %w", err)
	}
	for i := range im.Pix() {
		im.Pix()[i] = rng.Float64() * 255
	}

	// Normalize to [0, 1].
	var maxV float64
	for _, v := range im.Pix() {
		if v > maxV {
			maxV = v
		}
	}
	if maxV > 0 {
		for i := range im.Pix() {
			im.Pix()[i] /= maxV
		}
	}

	// 3×3 box blur.
	blur, err := tensor.FromSlice(3, 3, []float64{
		1.0 / 9, 1.0 / 9, 1.0 / 9,
		1.0 / 9, 1.0 / 9, 1.0 / 9,
		1.0 / 9, 1.0 / 9, 1.0 / 9,
	})
	if err != nil {
		return nil, fmt.Errorf("preprocess: %w", err)
	}
	smooth := tensor.Conv2DSame(im, blur)

	// Center crop.
	oy := (smooth.H() - effCrop) / 2
	ox := (smooth.W() - effCrop) / 2
	out, err := tensor.NewImage(effCrop, effCrop)
	if err != nil {
		return nil, fmt.Errorf("preprocess: %w", err)
	}
	for y := 0; y < effCrop; y++ {
		for x := 0; x < effCrop; x++ {
			out.Set(y, x, smooth.At(oy+y, ox+x))
		}
	}
	var sum float64
	for _, v := range out.Pix() {
		sum += v
	}
	return &Response{
		Values: map[string]float64{
			"mean":      sum / float64(len(out.Pix())),
			"crop_size": float64(effCrop),
		},
		Data: Float64sToBytes(out.Pix()),
	}, nil
}
