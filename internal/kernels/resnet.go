package kernels

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"kaas/internal/accel"
	"kaas/internal/nn"
	"kaas/internal/tensor"
)

// ResNetInference classifies batches of images with a residual network —
// the paper's scaling workload (§5.4: PyTorch ResNet-50 on batches of
// eight). Parameters:
//
//	batch — images per invocation (default 8)
//	seed  — RNG seed for the synthetic batch
//
// Execute runs real inference with a compact ResNetLite; Cost charges
// ResNet-50's published FLOP count per image so modeled device times match
// the paper's workload. Model-weight loading is SetupWork, paid once per
// warm runner — this is the 1.22 s cold-start offset of Fig. 12.
type ResNetInference struct {
	once  sync.Once
	model *nn.ResNetLite
	mu    sync.Mutex
}

// NewResNetInference creates the inference kernel.
func NewResNetInference() *ResNetInference { return &ResNetInference{} }

var _ Kernel = (*ResNetInference)(nil)

// Name implements Kernel.
func (*ResNetInference) Name() string { return "resnet" }

// Kind implements Kernel.
func (*ResNetInference) Kind() accel.Kind { return accel.GPU }

// Cost implements Kernel.
func (*ResNetInference) Cost(req *Request) (Cost, error) {
	batch := req.Params.Int("batch", 8)
	if batch <= 0 {
		return Cost{}, fmt.Errorf("resnet: invalid batch %d", batch)
	}
	// 224×224×3 uint8 images in, one class id out per image.
	imgBytes := int64(batch) * 224 * 224 * 3
	const weightsBytes = 100 << 20 // ResNet-50 fp32 weights ≈ 100 MB
	return Cost{
		Work: float64(batch) * nn.ResNet50FLOPsPerImage,
		// Weight loading and graph build: with the parallel-initialized
		// device runtime this yields the constant ~1.2 s cold-start
		// offset of Fig. 12.
		SetupTime:    830 * time.Millisecond,
		BytesIn:      imgBytes,
		BytesOut:     int64(batch) * 8,
		DeviceMemory: weightsBytes + imgBytes,
	}, nil
}

// Execute implements Kernel.
func (r *ResNetInference) Execute(req *Request) (*Response, error) {
	batch := req.Params.Int("batch", 8)
	if batch <= 0 {
		return nil, fmt.Errorf("resnet: invalid batch %d", batch)
	}
	if batch > 64 {
		batch = 64
	}
	var initErr error
	r.once.Do(func() {
		r.model, initErr = nn.NewResNetLite(rand.New(rand.NewSource(1234)), nn.DefaultResNetConfig())
	})
	if initErr != nil {
		return nil, fmt.Errorf("resnet: build model: %w", initErr)
	}
	if r.model == nil {
		return nil, fmt.Errorf("resnet: model unavailable after failed init")
	}

	rng := rand.New(rand.NewSource(int64(req.Params.Int("seed", 1))))
	images := make([]*tensor.Image, batch)
	size := r.model.ImageSize()
	for i := range images {
		im, err := tensor.NewImage(size, size)
		if err != nil {
			return nil, fmt.Errorf("resnet: %w", err)
		}
		for j := range im.Pix() {
			im.Pix()[j] = rng.Float64()
		}
		images[i] = im
	}

	r.mu.Lock()
	preds, err := r.model.Predict(images)
	r.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("resnet: %w", err)
	}
	classes := make([]float64, len(preds))
	for i, p := range preds {
		classes[i] = float64(p)
	}
	return &Response{
		Values: map[string]float64{
			"batch":       float64(batch),
			"first_class": classes[0],
		},
		Data: Float64sToBytes(classes),
	}, nil
}
