package kernels

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"kaas/internal/accel"
)

// GeneticAlgorithm iteratively mutates a population of N vectors of
// gaVectorLen elements over a fixed number of generations, minimizing a
// fitness function — the paper's GA kernel (§5.3, §5.6.1). Parameters:
//
//	n           — population size (default 1024)
//	generations — evolution steps (default 10)
//	seed        — RNG seed
//
// If the request carries a Data payload it is decoded as the initial
// population (n × gaVectorLen float64 values); this is the payload used by
// the remote-invocation experiment to exercise in-band vs out-of-band
// transfer. The fitness function is the Rastrigin function, a standard
// multimodal GA benchmark.
type GeneticAlgorithm struct{}

// gaVectorLen is the per-individual vector length (100 in the paper).
const gaVectorLen = 100

// gaExecCap bounds the population size evolved on the host.
const gaExecCap = 4096

// gaFitnessFLOPs is the modeled cost of one fitness evaluation. The
// paper's GPU-optimized fitness is far heavier than the host-side
// Rastrigin stand-in Execute computes; this constant calibrates the
// GPU/CPU completion-time ratio of Fig. 11.
const gaFitnessFLOPs = 6e7

// NewGeneticAlgorithm creates the GA kernel.
func NewGeneticAlgorithm() *GeneticAlgorithm { return &GeneticAlgorithm{} }

var _ Kernel = (*GeneticAlgorithm)(nil)

// Name implements Kernel.
func (*GeneticAlgorithm) Name() string { return "ga" }

// Kind implements Kernel.
func (*GeneticAlgorithm) Kind() accel.Kind { return accel.GPU }

// Cost implements Kernel.
func (*GeneticAlgorithm) Cost(req *Request) (Cost, error) {
	n := req.Params.Int("n", 1024)
	gens := req.Params.Int("generations", 10)
	if n <= 0 || gens <= 0 {
		return Cost{}, fmt.Errorf("ga: invalid n=%d generations=%d", n, gens)
	}
	popBytes := int64(n) * gaVectorLen * 8
	// Each generation evaluates a heavy GPU-tuned fitness function per
	// individual (the paper's fitness is "optimized for GPUs"), then
	// selects, crosses over and mutates. The iterative structure also
	// forces a host-device round trip per generation, which is what
	// makes GA the one kernel that can regress under KaaS (Fig. 14).
	perGen := float64(n) * gaFitnessFLOPs
	return Cost{
		Work:         float64(gens) * perGen,
		BytesIn:      popBytes + int64(gens)*popBytes/4, // initial pop + per-gen traffic
		BytesOut:     popBytes / 4,
		DeviceMemory: 2 * popBytes,
	}, nil
}

// rastrigin is the fitness function: global minimum 0 at the origin.
func rastrigin(x []float64) float64 {
	f := 10 * float64(len(x))
	for _, v := range x {
		f += v*v - 10*math.Cos(2*math.Pi*v)
	}
	return f
}

// Execute implements Kernel.
func (*GeneticAlgorithm) Execute(req *Request) (*Response, error) {
	n := req.Params.Int("n", 1024)
	gens := req.Params.Int("generations", 10)
	if n <= 0 || gens <= 0 {
		return nil, fmt.Errorf("ga: invalid n=%d generations=%d", n, gens)
	}
	eff := capDim(n, gaExecCap)
	rng := rand.New(rand.NewSource(int64(req.Params.Int("seed", 1))))

	pop := make([][]float64, eff)
	if len(req.Data) > 0 {
		vals, err := BytesToFloat64s(req.Data)
		if err != nil {
			return nil, fmt.Errorf("ga: decode population: %w", err)
		}
		if len(vals) < eff*gaVectorLen {
			return nil, fmt.Errorf("ga: payload has %d values, need %d", len(vals), eff*gaVectorLen)
		}
		for i := range pop {
			pop[i] = vals[i*gaVectorLen : (i+1)*gaVectorLen]
		}
	} else {
		for i := range pop {
			v := make([]float64, gaVectorLen)
			for j := range v {
				v[j] = rng.Float64()*10 - 5
			}
			pop[i] = v
		}
	}

	fitness := make([]float64, eff)
	order := make([]int, eff)
	firstBest := math.Inf(1)
	for g := 0; g < gens; g++ {
		for i, v := range pop {
			fitness[i] = rastrigin(v)
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return fitness[order[a]] < fitness[order[b]] })
		if g == 0 {
			firstBest = fitness[order[0]]
		}
		// Elitism: keep the top quarter; refill by crossover + mutation.
		elite := eff / 4
		if elite < 1 {
			elite = 1
		}
		next := make([][]float64, eff)
		for i := 0; i < elite; i++ {
			next[i] = pop[order[i]]
		}
		for i := elite; i < eff; i++ {
			pa := pop[order[rng.Intn(elite)]]
			pb := pop[order[rng.Intn(elite)]]
			child := make([]float64, gaVectorLen)
			cut := rng.Intn(gaVectorLen)
			copy(child[:cut], pa[:cut])
			copy(child[cut:], pb[cut:])
			// Gaussian mutation on a few genes.
			for m := 0; m < 3; m++ {
				child[rng.Intn(gaVectorLen)] += 0.3 * rng.NormFloat64()
			}
			next[i] = child
		}
		pop = next
	}
	for i, v := range pop {
		fitness[i] = rastrigin(v)
	}
	best := fitness[0]
	for _, f := range fitness[1:] {
		if f < best {
			best = f
		}
	}
	return &Response{Values: map[string]float64{
		"best_fitness":  best,
		"first_fitness": firstBest,
		"n":             float64(n),
		"effective_n":   float64(eff),
	}}, nil
}
