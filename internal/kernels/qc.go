package kernels

import (
	"fmt"
	"math/rand"
	"time"

	"kaas/internal/accel"
	"kaas/internal/qsim"
)

// QuantumSim simulates quantum circuits of N CX gates with the state-vector
// method — the paper's QC kernel, which runs the Qiskit AerSimulator on a
// GPU (§5.6.1). Parameters:
//
//	n      — number of CX gates (default 1024)
//	qubits — register width for the modeled circuit (default 16)
//	seed   — RNG seed
//
// Execute simulates the real circuit on a capped register (qcExecQubits
// qubits, gate count capped at qcExecCap) and returns the probability mass
// of the |0...0⟩ state; Cost charges gates × 2^qubits amplitude updates at
// the requested size.
type QuantumSim struct{}

const (
	// qcExecQubits is the register width actually simulated on the host.
	qcExecQubits = 10
	// qcExecCap bounds the gate count actually simulated.
	qcExecCap = 2048
)

// NewQuantumSim creates the QC kernel.
func NewQuantumSim() *QuantumSim { return &QuantumSim{} }

var _ Kernel = (*QuantumSim)(nil)

// Name implements Kernel.
func (*QuantumSim) Name() string { return "qc" }

// Kind implements Kernel.
func (*QuantumSim) Kind() accel.Kind { return accel.GPU }

// Cost implements Kernel.
func (*QuantumSim) Cost(req *Request) (Cost, error) {
	n := req.Params.Int("n", 1024)
	qubits := req.Params.Int("qubits", 16)
	if n <= 0 || qubits <= 0 || qubits > 30 {
		return Cost{}, fmt.Errorf("qc: invalid n=%d qubits=%d", n, qubits)
	}
	amps := float64(int64(1) << uint(qubits))
	// Per-gate amplitude updates are memory-bound complex arithmetic;
	// ~350 FLOP-equivalents per amplitude at the device's nominal rate.
	const perAmpCost = 350
	return Cost{
		Work:         (float64(n) + float64(qubits)) * amps * perAmpCost,
		SetupTime:    5 * time.Millisecond, // statevector allocation
		BytesIn:      int64(n) * 16,        // circuit description
		BytesOut:     1024,
		DeviceMemory: int64(amps) * 16,
	}, nil
}

// Execute implements Kernel.
func (*QuantumSim) Execute(req *Request) (*Response, error) {
	n := req.Params.Int("n", 1024)
	qubits := req.Params.Int("qubits", 16)
	if n <= 0 || qubits <= 0 || qubits > 30 {
		return nil, fmt.Errorf("qc: invalid n=%d qubits=%d", n, qubits)
	}
	effGates := capDim(n, qcExecCap)
	effQubits := qubits
	if effQubits > qcExecQubits {
		effQubits = qcExecQubits
	}
	if effQubits < 2 {
		effQubits = 2
	}
	rng := rand.New(rand.NewSource(int64(req.Params.Int("seed", 1))))
	circuit, err := qsim.RandomCXCircuit(rng, effQubits, effGates)
	if err != nil {
		return nil, fmt.Errorf("qc: %w", err)
	}
	state, err := circuit.Run()
	if err != nil {
		return nil, fmt.Errorf("qc: %w", err)
	}
	return &Response{Values: map[string]float64{
		"p_zero":      state.Probability(0),
		"norm":        state.Norm(),
		"n":           float64(n),
		"effective_n": float64(effGates),
	}}, nil
}
