package kernels

import (
	"fmt"
	"math/rand"
	"time"

	"kaas/internal/accel"
	"kaas/internal/qsim"
)

// VQEKernel performs a single-point electronic-structure calculation with
// the variational quantum eigensolver — the paper's QPU workload (§5.6.4).
// The "quantum kernel" is the estimator primitive; circuit transpilation
// happens on classical hardware and is the SetupWork that a warm KaaS
// runner caches across the iterative VQE loop. Parameters:
//
//	iterations — optimizer iterations (default 12)
//	depth      — ansatz depth (default 2)
//	seed       — RNG seed for the starting parameters
//
// Execute runs the real optimization against the H2 Hamiltonian and
// returns the ground-state energy estimate.
type VQEKernel struct{}

// NewVQEKernel creates the VQE kernel.
func NewVQEKernel() *VQEKernel { return &VQEKernel{} }

var _ Kernel = (*VQEKernel)(nil)

// Name implements Kernel.
func (*VQEKernel) Name() string { return "vqe" }

// Kind implements Kernel.
func (*VQEKernel) Kind() accel.Kind { return accel.QPU }

// vqeEstimatorCalls returns the estimator invocations of one optimization:
// per iteration, two per parameter (parameter shift) plus one evaluation,
// plus the initial evaluation.
func vqeEstimatorCalls(iterations, params int) int {
	return 1 + iterations*(2*params+1)
}

// Cost implements Kernel.
func (*VQEKernel) Cost(req *Request) (Cost, error) {
	iters := req.Params.Int("iterations", 12)
	depth := req.Params.Int("depth", 2)
	if iters <= 0 || depth < 0 {
		return Cost{}, fmt.Errorf("vqe: invalid iterations=%d depth=%d", iters, depth)
	}
	ansatz := qsim.Ansatz{NumQubits: 2, Depth: depth}
	circ, err := ansatz.Circuit(make([]float64, ansatz.NumParams()))
	if err != nil {
		return Cost{}, fmt.Errorf("vqe: %w", err)
	}
	calls := vqeEstimatorCalls(iters, ansatz.NumParams())
	perCall := circ.AmplitudeOps() + 5*4 // circuit + 5 Pauli-term evaluations
	return Cost{
		Work:         float64(calls) * perCall,
		SetupTime:    1200 * time.Millisecond, // transpilation of the ansatz
		BytesIn:      int64(ansatz.NumParams()) * 8,
		BytesOut:     8,
		DeviceMemory: 1 << 16,
	}, nil
}

// Execute implements Kernel.
func (*VQEKernel) Execute(req *Request) (*Response, error) {
	iters := req.Params.Int("iterations", 12)
	depth := req.Params.Int("depth", 2)
	if iters <= 0 || depth < 0 {
		return nil, fmt.Errorf("vqe: invalid iterations=%d depth=%d", iters, depth)
	}
	effIters := capDim(iters, 60)
	v := &qsim.VQE{
		Hamiltonian:  qsim.H2Hamiltonian(),
		Ansatz:       qsim.Ansatz{NumQubits: 2, Depth: depth},
		LearningRate: 0.3,
	}
	rng := rand.New(rand.NewSource(int64(req.Params.Int("seed", 3))))
	start := make([]float64, v.Ansatz.NumParams())
	for i := range start {
		start[i] = rng.Float64() * 0.5
	}
	energy, _, err := v.Minimize(start, effIters)
	if err != nil {
		return nil, fmt.Errorf("vqe: %w", err)
	}
	return &Response{Values: map[string]float64{
		"energy":      energy,
		"evaluations": float64(v.Evaluations()),
		"n":           float64(iters),
		"effective_n": float64(effIters),
	}}, nil
}
