package kernels

import (
	"math"
	"testing"

	"kaas/internal/accel"
)

func TestFuseValidation(t *testing.T) {
	bitmap := NewBitmapConversion()
	hist := NewHistogram()
	mm := NewMatMul(accel.GPU)

	if _, err := Fuse("", bitmap, hist); err == nil {
		t.Error("empty name succeeded")
	}
	if _, err := Fuse("f", nil, hist); err == nil {
		t.Error("nil first kernel succeeded")
	}
	if _, err := Fuse("f", bitmap, nil); err == nil {
		t.Error("nil second kernel succeeded")
	}
	if _, err := Fuse("f", bitmap, mm); err == nil {
		t.Error("cross-kind fusion succeeded")
	}
	f, err := Fuse("fpga-pipeline", bitmap, hist)
	if err != nil {
		t.Fatalf("Fuse: %v", err)
	}
	if f.Name() != "fpga-pipeline" || f.Kind() != accel.FPGA {
		t.Errorf("fused identity: %s/%s", f.Name(), f.Kind())
	}
}

func TestFusedCostElidesIntermediateTransfer(t *testing.T) {
	bitmap := NewBitmapConversion()
	hist := NewHistogram()
	f, err := Fuse("fpga-pipeline", bitmap, hist)
	if err != nil {
		t.Fatalf("Fuse: %v", err)
	}
	req := &Request{Params: Params{"height": 512, "width": 512, "n": 100000}}
	ca, _ := bitmap.Cost(req)
	cb, _ := hist.Cost(req)
	cf, err := f.Cost(req)
	if err != nil {
		t.Fatalf("Cost: %v", err)
	}
	if cf.Work != ca.Work+cb.Work {
		t.Errorf("fused work = %v, want %v", cf.Work, ca.Work+cb.Work)
	}
	if cf.BytesIn != ca.BytesIn {
		t.Errorf("fused BytesIn = %v, want first stage's %v", cf.BytesIn, ca.BytesIn)
	}
	if cf.BytesOut != cb.BytesOut {
		t.Errorf("fused BytesOut = %v, want second stage's %v", cf.BytesOut, cb.BytesOut)
	}
	separate := ca.BytesIn + ca.BytesOut + cb.BytesIn + cb.BytesOut
	fusedTotal := cf.BytesIn + cf.BytesOut
	if fusedTotal >= separate {
		t.Errorf("fusion saved no transfer: %v vs %v", fusedTotal, separate)
	}
	fi, ok := f.(*fused)
	if !ok {
		t.Fatal("fused kernel has unexpected type")
	}
	saved, err := fi.SavedTransfer(req)
	if err != nil {
		t.Fatalf("SavedTransfer: %v", err)
	}
	if saved != ca.BytesOut+cb.BytesIn {
		t.Errorf("SavedTransfer = %v, want %v", saved, ca.BytesOut+cb.BytesIn)
	}
}

func TestFusedExecuteChainsPayload(t *testing.T) {
	bitmap := NewBitmapConversion()
	hist := NewHistogram()
	f, err := Fuse("fpga-pipeline", bitmap, hist)
	if err != nil {
		t.Fatalf("Fuse: %v", err)
	}
	resp, err := f.Execute(&Request{Params: Params{
		"height": 64, "width": 64, "factor": 2, "n": 10000,
	}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// Both stages' values present, prefixed.
	if _, ok := resp.Values["bitmap.mean_luma"]; !ok {
		t.Errorf("missing first-stage value; have %v", resp.Values)
	}
	if got := resp.Values["histogram.total"]; got != 10000 {
		t.Errorf("histogram.total = %v, want 10000", got)
	}
	// Final payload is the second stage's (256 histogram bins).
	bins, err := BytesToFloat64s(resp.Data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(bins) != 256 {
		t.Errorf("payload bins = %d, want 256", len(bins))
	}
	for _, v := range resp.Values {
		if math.IsNaN(v) {
			t.Fatal("NaN in fused values")
		}
	}
}

func TestFusedErrorsNameStage(t *testing.T) {
	bitmap := NewBitmapConversion()
	hist := NewHistogram()
	f, _ := Fuse("p", bitmap, hist)
	if _, err := f.Execute(&Request{Params: Params{"height": -1}}); err == nil {
		t.Error("bad first-stage params succeeded")
	}
	if _, err := f.Cost(&Request{Params: Params{"height": -1}}); err == nil {
		t.Error("bad first-stage cost succeeded")
	}
	if _, err := f.Cost(&Request{Params: Params{"n": -1}}); err == nil {
		t.Error("bad second-stage cost succeeded")
	}
}

func TestRetarget(t *testing.T) {
	ga := NewGeneticAlgorithm()
	cpu := Retarget(ga, accel.CPU)
	if cpu.Kind() != accel.CPU {
		t.Errorf("Kind = %v, want CPU", cpu.Kind())
	}
	if cpu.Name() != ga.Name() {
		t.Errorf("Name changed: %q", cpu.Name())
	}
	// Behaviour is unchanged.
	a, err := ga.Execute(&Request{Params: Params{"n": 32, "seed": 4}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	b, err := cpu.Execute(&Request{Params: Params{"n": 32, "seed": 4}})
	if err != nil {
		t.Fatalf("retargeted Execute: %v", err)
	}
	if a.Values["best_fitness"] != b.Values["best_fitness"] {
		t.Error("retargeting changed results")
	}
}
