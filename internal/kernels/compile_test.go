package kernels

import (
	"testing"
	"time"

	"kaas/internal/accel"
)

func TestCompileProfileDeterministicAndSpread(t *testing.T) {
	mci := NewMonteCarlo()
	d1, s1 := CompileProfile(mci)
	d2, s2 := CompileProfile(mci)
	if d1 != d2 || s1 != s2 {
		t.Fatalf("CompileProfile not deterministic: (%v,%d) vs (%v,%d)", d1, s1, d2, s2)
	}
	if d1 <= 0 || s1 <= 0 {
		t.Fatalf("CompileProfile returned non-positive cost: %v, %d", d1, s1)
	}
	base := compileBase[mci.Kind()]
	if d1 < time.Duration(float64(base.d)*0.75) || d1 >= time.Duration(float64(base.d)*1.25) {
		t.Fatalf("compile duration %v outside ±25%% of base %v", d1, base.d)
	}
}

func TestCompileProfileVariesAcrossKernels(t *testing.T) {
	sizes := map[int64]bool{}
	for _, k := range Suite() {
		_, size := CompileProfile(k)
		sizes[size] = true
	}
	if len(sizes) < 2 {
		t.Fatalf("all %d suite kernels share one artifact size; expected per-kernel spread", len(Suite()))
	}
}

func TestCompileProfileUnknownKindFallback(t *testing.T) {
	k := NewMatMul(accel.Kind(99))
	d, s := CompileProfile(k)
	if d <= 0 || s <= 0 {
		t.Fatalf("fallback compile profile invalid: %v, %d", d, s)
	}
}
