package shm

import (
	"errors"
	"sync"
	"testing"
)

func TestArenaAcquireRoundsToSizeClass(t *testing.T) {
	p := NewArenaPool(1 << 20)
	l, err := p.Acquire(5000)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if l.Cap() != 8<<10 {
		t.Errorf("Cap = %d, want %d (next power of two above 5000)", l.Cap(), 8<<10)
	}
	if got := int64(len(l.Bytes())); got != l.Cap() {
		t.Errorf("len(Bytes()) = %d, want %d", got, l.Cap())
	}
	small, err := p.Acquire(1)
	if err != nil {
		t.Fatalf("Acquire small: %v", err)
	}
	if small.Cap() != MinLeaseBytes {
		t.Errorf("small Cap = %d, want MinLeaseBytes %d", small.Cap(), MinLeaseBytes)
	}
}

func TestArenaBudgetAndRevokeReturnsBytes(t *testing.T) {
	p := NewArenaPool(16 << 10)
	a, err := p.Acquire(8 << 10)
	if err != nil {
		t.Fatalf("Acquire a: %v", err)
	}
	if _, err := p.Acquire(8 << 10); err != nil {
		t.Fatalf("Acquire b: %v", err)
	}
	// Budget is full: a third lease must be refused, not oversubscribed.
	if _, err := p.Acquire(8 << 10); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("Acquire over budget: err = %v, want ErrNoSpace", err)
	}
	// Revoking returns the bytes: the same acquisition now succeeds and
	// reuses the parked slab without allocating a new one.
	if !p.Revoke(a.ID()) {
		t.Fatal("Revoke returned false for a live lease")
	}
	c, err := p.Acquire(8 << 10)
	if err != nil {
		t.Fatalf("Acquire after revoke: %v", err)
	}
	if &c.Bytes()[0] != &a.Bytes()[0] {
		t.Error("slab was not reused after revoke")
	}
	st := p.Stats()
	if st.Reuses != 1 {
		t.Errorf("Reuses = %d, want 1", st.Reuses)
	}
	if st.Granted != 16<<10 || st.Pooled != 0 {
		t.Errorf("Granted/Pooled = %d/%d, want %d/0", st.Granted, st.Pooled, 16<<10)
	}
}

func TestArenaRevokeDeferredWhileRetained(t *testing.T) {
	p := NewArenaPool(8 << 10)
	l, err := p.Acquire(8 << 10)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if err := l.Retain(); err != nil {
		t.Fatalf("Retain: %v", err)
	}
	p.Revoke(l.ID())
	// The slab must stay pinned: a new acquisition cannot steal it.
	if _, err := p.Acquire(8 << 10); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("Acquire while pinned: err = %v, want ErrNoSpace", err)
	}
	if err := l.Retain(); !errors.Is(err, ErrRevoked) {
		t.Errorf("Retain after revoke: err = %v, want ErrRevoked", err)
	}
	l.Release()
	if _, err := p.Acquire(8 << 10); err != nil {
		t.Fatalf("Acquire after last release: %v", err)
	}
	if !p.WasRevoked(l.ID()) {
		t.Error("WasRevoked = false for a revoked lease")
	}
	if p.WasRevoked(999) {
		t.Error("WasRevoked = true for a never-granted ID")
	}
}

func TestArenaRevokeAll(t *testing.T) {
	p := NewArenaPool(0)
	for i := 0; i < 3; i++ {
		if _, err := p.Acquire(4 << 10); err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
	}
	ids := p.RevokeAll()
	if len(ids) != 3 {
		t.Fatalf("RevokeAll returned %d ids, want 3", len(ids))
	}
	st := p.Stats()
	if st.Active != 0 || st.Granted != 0 || st.Revocations != 3 {
		t.Errorf("after RevokeAll: %+v", st)
	}
}

func TestArenaPooledSlabEviction(t *testing.T) {
	p := NewArenaPool(8 << 10)
	a, err := p.Acquire(8 << 10)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	p.Revoke(a.ID())
	// The whole budget is parked as an 8 KiB slab; a 4 KiB lease must
	// evict it rather than fail.
	if _, err := p.Acquire(4 << 10); err != nil {
		t.Fatalf("Acquire with pooled budget held: %v", err)
	}
}

func TestArenaConcurrentAcquireRevoke(t *testing.T) {
	p := NewArenaPool(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l, err := p.Acquire(4 << 10)
				if err != nil {
					continue
				}
				if err := l.Retain(); err == nil {
					copy(l.Bytes(), "payload")
					l.Release()
				}
				p.Revoke(l.ID())
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	if st.Active != 0 || st.Granted != 0 {
		t.Errorf("leaked leases: %+v", st)
	}
}

func TestSupported(t *testing.T) {
	ok, detail := Supported()
	if !ok || detail == "" {
		t.Errorf("Supported() = %v, %q; the simulated arena is always available", ok, detail)
	}
}
