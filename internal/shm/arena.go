package shm

import (
	"fmt"
	"sync"
)

// MinLeaseBytes is the smallest arena window granted: requests are
// rounded up to a power-of-two size class no smaller than this, so
// slabs returned to the pool are reusable across payload sizes.
const MinLeaseBytes = 4 << 10

// ErrRevoked indicates the lease was revoked before the operation.
var ErrRevoked = fmt.Errorf("shm: lease revoked")

// Supported reports whether this host can back tensor arenas, with a
// human-readable detail. The simulated shared memory is in-process and
// always available; the probe exists so callers (make bench-dataplane)
// have a uniform "skip gracefully when the host lacks shm" seam that a
// real mmap-backed implementation would fail on.
func Supported() (bool, string) {
	return true, "in-process simulated shared memory"
}

// ArenaPool is a byte-budgeted pool of tensor arena slabs handed out as
// leases: a client negotiates a lease once, then moves payloads through
// the leased window by handle with no per-invocation allocation. Slabs
// are power-of-two size classes; a revoked or released lease returns
// its slab to a free list, so steady-state traffic allocates nothing.
// It models the process-shared arena mapping both endpoints of a
// connection see (rFaaS-style leased remote-memory windows).
//
// Revocation is refcount-safe: Revoke marks the lease dead immediately
// (new Retains fail) but the slab rejoins the free list only when
// in-flight users release it, so a server can revoke mid-invocation
// without yanking memory out from under a running kernel.
type ArenaPool struct {
	mu       sync.Mutex
	capacity int64
	granted  int64              // bytes held by live leases
	pooled   int64              // bytes parked on the free lists
	free     map[int64][][]byte // size class -> free slabs
	leases   map[uint64]*Lease
	revoked  map[uint64]struct{} // tombstones: distinguish stale from bogus
	seq      uint64

	grants      uint64
	reuses      uint64
	revocations uint64
}

// NewArenaPool creates a pool with the given total byte budget
// (0 means unlimited).
func NewArenaPool(capacity int64) *ArenaPool {
	return &ArenaPool{
		capacity: capacity,
		free:     make(map[int64][][]byte),
		leases:   make(map[uint64]*Lease),
		revoked:  make(map[uint64]struct{}),
	}
}

// Lease is a granted window into an arena slab.
type Lease struct {
	id   uint64
	pool *ArenaPool
	buf  []byte

	// guarded by pool.mu
	refs     int
	isDead   bool
	returned bool
}

// classFor rounds n up to the pool's power-of-two size class.
func classFor(n int64) int64 {
	c := int64(MinLeaseBytes)
	for c < n {
		c <<= 1
	}
	return c
}

// Acquire grants a lease over a window of at least bytes capacity,
// reusing a pooled slab of the same size class when one is free.
func (p *ArenaPool) Acquire(bytes int64) (*Lease, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("shm: lease size %d must be positive", bytes)
	}
	class := classFor(bytes)
	p.mu.Lock()
	defer p.mu.Unlock()

	var buf []byte
	if slabs := p.free[class]; len(slabs) > 0 {
		buf = slabs[len(slabs)-1]
		p.free[class] = slabs[:len(slabs)-1]
		p.pooled -= class
		p.reuses++
	} else {
		if p.capacity > 0 && p.granted+p.pooled+class > p.capacity {
			// Evict idle slabs of other classes before refusing.
			p.evictPooledLocked(p.granted + p.pooled + class - p.capacity)
		}
		if p.capacity > 0 && p.granted+p.pooled+class > p.capacity {
			return nil, fmt.Errorf("%w: lease wants %d, granted %d of %d", ErrNoSpace, class, p.granted, p.capacity)
		}
		buf = make([]byte, class)
	}
	p.seq++
	l := &Lease{id: p.seq, pool: p, buf: buf}
	p.leases[l.id] = l
	p.granted += class
	p.grants++
	return l, nil
}

// evictPooledLocked drops free slabs until at least need bytes of
// budget are recovered or the free lists are empty.
func (p *ArenaPool) evictPooledLocked(need int64) {
	for class, slabs := range p.free {
		for len(slabs) > 0 && need > 0 {
			slabs = slabs[:len(slabs)-1]
			p.pooled -= class
			need -= class
		}
		p.free[class] = slabs
		if need <= 0 {
			return
		}
	}
}

// Get returns the live lease with the given ID.
func (p *ArenaPool) Get(id uint64) (*Lease, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	l, ok := p.leases[id]
	return l, ok
}

// WasRevoked reports whether id names a lease that existed and was
// revoked — the stale-lease case a client can recover from by falling
// back to in-band transfer, as opposed to an ID that was never granted.
func (p *ArenaPool) WasRevoked(id uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.revoked[id]
	return ok
}

// Revoke withdraws a lease. The budget is credited as soon as no
// in-flight user holds a reference; the slab then rejoins the free
// list. Revoking an unknown ID is a no-op returning false.
func (p *ArenaPool) Revoke(id uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	l, ok := p.leases[id]
	if !ok {
		return false
	}
	delete(p.leases, id)
	p.revoked[id] = struct{}{}
	p.revocations++
	l.isDead = true
	if l.refs == 0 {
		p.returnSlabLocked(l)
	}
	return true
}

// RevokeAll withdraws every live lease and returns their IDs, used on
// drain and teardown.
func (p *ArenaPool) RevokeAll() []uint64 {
	p.mu.Lock()
	ids := make([]uint64, 0, len(p.leases))
	for id := range p.leases {
		ids = append(ids, id)
	}
	p.mu.Unlock()
	for _, id := range ids {
		p.Revoke(id)
	}
	return ids
}

// returnSlabLocked credits the lease's bytes back to the budget and
// parks its slab for reuse.
func (p *ArenaPool) returnSlabLocked(l *Lease) {
	if l.returned {
		return
	}
	l.returned = true
	class := int64(cap(l.buf))
	p.granted -= class
	p.free[class] = append(p.free[class], l.buf[:cap(l.buf)])
	p.pooled += class
}

// ID returns the lease's pool-unique identifier.
func (l *Lease) ID() uint64 { return l.id }

// Cap returns the window capacity in bytes.
func (l *Lease) Cap() int64 { return int64(cap(l.buf)) }

// Bytes returns the leased window. Both endpoints of a connection see
// the same backing array — that sharing is the zero-copy transfer.
func (l *Lease) Bytes() []byte { return l.buf[:cap(l.buf)] }

// Retain pins the lease for an in-flight use so a concurrent Revoke
// cannot recycle the slab mid-kernel. It fails once the lease is dead.
func (l *Lease) Retain() error {
	l.pool.mu.Lock()
	defer l.pool.mu.Unlock()
	if l.isDead {
		return ErrRevoked
	}
	l.refs++
	return nil
}

// Release drops a Retain pin. If the lease was revoked while pinned,
// the last Release returns the slab to the pool.
func (l *Lease) Release() {
	l.pool.mu.Lock()
	defer l.pool.mu.Unlock()
	if l.refs > 0 {
		l.refs--
	}
	if l.isDead && l.refs == 0 {
		l.pool.returnSlabLocked(l)
	}
}

// ArenaStats is a snapshot of a pool's accounting.
type ArenaStats struct {
	Capacity    int64  // byte budget (0 = unlimited)
	Granted     int64  // bytes held by live leases
	Pooled      int64  // bytes parked on free lists
	Active      int    // live leases
	Grants      uint64 // leases granted since creation
	Reuses      uint64 // grants served from a pooled slab (no allocation)
	Revocations uint64 // leases revoked
}

// Stats returns the pool's current accounting snapshot.
func (p *ArenaPool) Stats() ArenaStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return ArenaStats{
		Capacity:    p.capacity,
		Granted:     p.granted,
		Pooled:      p.pooled,
		Active:      len(p.leases),
		Grants:      p.grants,
		Reuses:      p.reuses,
		Revocations: p.revocations,
	}
}
