package shm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	r := NewRegistry(0)
	data := []byte{1, 2, 3, 4}
	if err := r.Put("a", data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := r.Get("a")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != string(data) {
		t.Errorf("Get = %v, want %v", got, data)
	}
	// The registry holds a copy: mutating inputs/outputs is safe.
	data[0] = 99
	got[1] = 99
	again, _ := r.Get("a")
	if again[0] != 1 || again[1] != 2 {
		t.Error("registry shares storage with caller slices")
	}
}

func TestPutDuplicateKey(t *testing.T) {
	r := NewRegistry(0)
	if err := r.Put("k", nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := r.Put("k", nil); !errors.Is(err, ErrExists) {
		t.Errorf("err = %v, want ErrExists", err)
	}
	if err := r.Put("", nil); err == nil {
		t.Error("empty key succeeded")
	}
}

func TestGetMissing(t *testing.T) {
	r := NewRegistry(0)
	if _, err := r.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestCapacityEnforced(t *testing.T) {
	r := NewRegistry(10)
	if err := r.Put("a", make([]byte, 8)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := r.Put("b", make([]byte, 8)); !errors.Is(err, ErrNoSpace) {
		t.Errorf("err = %v, want ErrNoSpace", err)
	}
	r.Delete("a")
	if err := r.Put("b", make([]byte, 8)); err != nil {
		t.Errorf("Put after Delete: %v", err)
	}
}

func TestDeleteAccounting(t *testing.T) {
	r := NewRegistry(0)
	_ = r.Put("a", make([]byte, 100))
	if r.Used() != 100 || r.Len() != 1 {
		t.Errorf("Used=%d Len=%d", r.Used(), r.Len())
	}
	r.Delete("a")
	if r.Used() != 0 || r.Len() != 0 {
		t.Errorf("after delete Used=%d Len=%d", r.Used(), r.Len())
	}
	r.Delete("a") // no-op
}

func TestCreateUniqueKeys(t *testing.T) {
	r := NewRegistry(0)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		key, err := r.Create([]byte{byte(i)})
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		if seen[key] {
			t.Fatalf("duplicate key %q", key)
		}
		seen[key] = true
	}
	if r.Len() != 100 {
		t.Errorf("Len = %d, want 100", r.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry(0)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", i)
			if err := r.Put(key, []byte{byte(i)}); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
			if _, err := r.Get(key); err != nil {
				t.Errorf("Get: %v", err)
			}
			if i%2 == 0 {
				r.Delete(key)
			}
		}()
	}
	wg.Wait()
	if r.Len() != 10 {
		t.Errorf("Len = %d, want 10", r.Len())
	}
}
