// Package shm simulates host-local shared memory regions used for
// out-of-band data transfer between KaaS clients and task runners on the
// same machine: the client writes a payload into a named region and sends
// only the key over the wire, and the runner maps the region by key. This
// mirrors the paper's single-node out-of-band path (§4.1) without
// requiring OS shared-memory segments.
package shm

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by the registry.
var (
	// ErrNotFound indicates the region key is unknown.
	ErrNotFound = errors.New("shm: region not found")
	// ErrExists indicates the region key is already in use.
	ErrExists = errors.New("shm: region already exists")
	// ErrNoSpace indicates the registry capacity would be exceeded.
	ErrNoSpace = errors.New("shm: capacity exceeded")
)

// Registry is a set of named in-memory regions with a capacity bound.
// It is safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	regions  map[string][]byte
	seq      uint64
}

// NewRegistry creates a registry with the given total capacity in bytes
// (0 means unlimited).
func NewRegistry(capacity int64) *Registry {
	return &Registry{
		capacity: capacity,
		regions:  make(map[string][]byte),
	}
}

// Put stores data under key. The data is copied.
func (r *Registry) Put(key string, data []byte) error {
	if key == "" {
		return fmt.Errorf("shm: empty key")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.regions[key]; ok {
		return fmt.Errorf("%w: %q", ErrExists, key)
	}
	if r.capacity > 0 && r.used+int64(len(data)) > r.capacity {
		return fmt.Errorf("%w: want %d, used %d of %d", ErrNoSpace, len(data), r.used, r.capacity)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	r.regions[key] = cp
	r.used += int64(len(cp))
	return nil
}

// Create stores data under a fresh unique key and returns the key.
func (r *Registry) Create(data []byte) (string, error) {
	r.mu.Lock()
	r.seq++
	key := fmt.Sprintf("shm-%d", r.seq)
	r.mu.Unlock()
	if err := r.Put(key, data); err != nil {
		return "", err
	}
	return key, nil
}

// Get returns a copy of the region's contents.
func (r *Registry) Get(key string) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	data, ok := r.regions[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Delete removes a region. Deleting a missing key is a no-op.
func (r *Registry) Delete(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if data, ok := r.regions[key]; ok {
		r.used -= int64(len(data))
		delete(r.regions, key)
	}
}

// Used returns the bytes currently stored.
func (r *Registry) Used() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.used
}

// Len returns the number of live regions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.regions)
}
