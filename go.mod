module kaas

go 1.22
