package kaas

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"kaas/internal/core"
)

func newCluster(t *testing.T) *Cluster {
	t.Helper()
	gpuHost, err := New(WithHostName("gpu-node"), WithAccelerators(TeslaP100))
	if err != nil {
		t.Fatalf("New gpu host: %v", err)
	}
	fpgaHost, err := New(WithHostName("fpga-node"), WithAccelerators(AlveoU250))
	if err != nil {
		t.Fatalf("New fpga host: %v", err)
	}
	mixedHost, err := New(WithHostName("mixed-node"), WithAccelerators(TeslaP100, AlveoU250))
	if err != nil {
		t.Fatalf("New mixed host: %v", err)
	}
	c, err := NewCluster(gpuHost, fpgaHost, mixedHost)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(); err == nil {
		t.Error("empty cluster succeeded")
	}
	if _, err := NewCluster(nil); err == nil {
		t.Error("nil platform succeeded")
	}
}

func TestClusterRegisterByKindAvailability(t *testing.T) {
	c := newCluster(t)
	if c.Size() != 3 {
		t.Fatalf("Size = %d, want 3", c.Size())
	}
	// matmul (GPU) lands on hosts 0 and 2; histogram (FPGA) on 1 and 2.
	if err := c.RegisterByName("matmul"); err != nil {
		t.Fatalf("RegisterByName matmul: %v", err)
	}
	if err := c.RegisterByName("histogram"); err != nil {
		t.Fatalf("RegisterByName histogram: %v", err)
	}
	stats := c.Stats()
	if stats[0].Kernels != 1 || stats[1].Kernels != 1 || stats[2].Kernels != 2 {
		t.Errorf("kernels per host = %d/%d/%d, want 1/1/2",
			stats[0].Kernels, stats[1].Kernels, stats[2].Kernels)
	}
	if err := c.RegisterByName("nope"); err == nil {
		t.Error("unknown kernel succeeded")
	}
}

func TestClusterRoutesToServingHost(t *testing.T) {
	c := newCluster(t)
	if err := c.RegisterByName("histogram"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	resp, report, host, err := c.Invoke(context.Background(), "histogram", Params{"n": 10000}, nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if host != 1 && host != 2 {
		t.Errorf("histogram routed to host %d, want an FPGA host (1 or 2)", host)
	}
	if resp.Values["total"] != 10000 {
		t.Errorf("total = %v", resp.Values["total"])
	}
	if report == nil || report.Device == "" {
		t.Error("missing report")
	}
}

func TestClusterUnknownKernel(t *testing.T) {
	c := newCluster(t)
	if _, _, _, err := c.Invoke(context.Background(), "ghost", nil, nil); err == nil {
		t.Error("unregistered kernel succeeded")
	}
}

func TestClusterSpreadsConcurrentLoad(t *testing.T) {
	c := newCluster(t)
	if err := c.RegisterByName("matmul"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	var mu sync.Mutex
	hosts := make(map[int]int)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, host, err := c.Invoke(context.Background(), "matmul", Params{"n": 4000}, nil)
			if err != nil {
				t.Errorf("Invoke: %v", err)
				return
			}
			mu.Lock()
			hosts[host]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	// Both GPU-bearing hosts (0 and 2) should have served work.
	if hosts[0] == 0 || hosts[2] == 0 {
		t.Errorf("load not spread across GPU hosts: %v", hosts)
	}
	if hosts[1] != 0 {
		t.Errorf("FPGA-only host served %d matmul invocations", hosts[1])
	}
}

func TestClusterFailsOverFromDrainingHost(t *testing.T) {
	a, err := New(WithHostName("node-a"), WithAccelerators(TeslaP100))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	b, err := New(WithHostName("node-b"), WithAccelerators(TeslaP100))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer b.Close()
	c, err := NewCluster(a, b)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if err := c.RegisterByName("mci"); err != nil {
		t.Fatalf("Register: %v", err)
	}

	ctx := context.Background()
	// Drain host 0: it rejects new work with ErrDraining, so the cluster
	// must reroute every subsequent invocation to host 1.
	shutdownCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := a.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for i := 0; i < 4; i++ {
		_, _, host, err := c.Invoke(ctx, "mci", Params{"n": 1000}, nil)
		if err != nil {
			t.Fatalf("Invoke after drain: %v", err)
		}
		if host != 1 {
			t.Errorf("invocation served by host %d, want failover to 1", host)
		}
	}
}

func TestClusterAllHostsDownSurfacesTypedError(t *testing.T) {
	a, err := New(WithHostName("solo"), WithAccelerators(TeslaP100))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c, err := NewCluster(a)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if err := c.RegisterByName("mci"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	_, _, _, err = c.Invoke(context.Background(), "mci", Params{"n": 1000}, nil)
	if !errors.Is(err, core.ErrServerClosed) {
		t.Errorf("Invoke on fully-drained cluster = %v, want ErrServerClosed", err)
	}
}

// TestClusterSkipsBreakerOpenHost: a host whose every device of the
// kernel's kind is excluded by an open circuit breaker must be
// ineligible for routing — not merely failed over from after receiving
// its least-loaded share. Before the Routable check in pick, host 0
// kept receiving (and failing) invocations here; now its invocation
// counter stays frozen while host 1 serves everything.
func TestClusterSkipsBreakerOpenHost(t *testing.T) {
	// Breaker: one failure opens, and the open timeout is hours of
	// modeled time so it cannot half-open during the test.
	opts := []Option{WithAccelerators(TeslaP100), WithBreaker(1, 12 * time.Hour)}
	p0, err := New(append([]Option{WithHostName("sick")}, opts...)...)
	if err != nil {
		t.Fatalf("New p0: %v", err)
	}
	p1, err := New(append([]Option{WithHostName("healthy")}, opts...)...)
	if err != nil {
		t.Fatalf("New p1: %v", err)
	}
	c, err := NewCluster(p0, p1)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Close)
	if err := c.RegisterByName("mci"); err != nil {
		t.Fatalf("Register: %v", err)
	}

	ctx := context.Background()
	// Fail host 0's only GPU and invoke it directly: the failure is
	// recorded as breaker evidence and (threshold 1) opens the breaker.
	gpus := p0.host.DevicesByKind(GPU)
	if len(gpus) != 1 {
		t.Fatalf("host 0 has %d GPUs, want 1", len(gpus))
	}
	gpus[0].Fail()
	if _, _, err := p0.Invoke(ctx, "mci", Params{"n": 1000}, nil); err == nil {
		t.Fatal("Invoke on failed device succeeded")
	}
	// Repair the device: now only the open breaker excludes it.
	gpus[0].Repair()
	if p0.server.Routable("mci") {
		t.Fatal("host 0 routable with its only GPU breaker open")
	}

	before := p0.Stats().PerKernel["mci"].Invocations
	for i := 0; i < 6; i++ {
		_, _, host, err := c.Invoke(ctx, "mci", Params{"n": 1000}, nil)
		if err != nil {
			t.Fatalf("Invoke %d: %v", i, err)
		}
		if host != 1 {
			t.Errorf("invocation %d served by host %d, want 1", i, host)
		}
	}
	if after := p0.Stats().PerKernel["mci"].Invocations; after != before {
		t.Errorf("breaker-open host received %d invocations", after-before)
	}
}

// TestClusterSharesCompiledArtifacts: a kernel JIT-compiled during a cold
// start on one cluster member is seeded into its peers' caches, so the
// peer's first boot of the same kernel is cached-cold — it skips
// compilation entirely.
func TestClusterSharesCompiledArtifacts(t *testing.T) {
	opts := []Option{WithTimeScale(5000), WithArtifactCache(64 << 20)}
	p1, err := New(append([]Option{WithHostName("node-1")}, opts...)...)
	if err != nil {
		t.Fatalf("New p1: %v", err)
	}
	p2, err := New(append([]Option{WithHostName("node-2")}, opts...)...)
	if err != nil {
		t.Fatalf("New p2: %v", err)
	}
	c, err := NewCluster(p1, p2)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Close)
	if err := c.RegisterByName("matmul"); err != nil {
		t.Fatalf("RegisterByName: %v", err)
	}

	_, r1, err := p1.Invoke(context.Background(), "matmul", Params{"n": 32}, nil)
	if err != nil {
		t.Fatalf("Invoke on node-1: %v", err)
	}
	if !r1.Cold || r1.CachedCold {
		t.Errorf("node-1 first boot: Cold=%v CachedCold=%v, want a plain cold start", r1.Cold, r1.CachedCold)
	}

	_, r2, err := p2.Invoke(context.Background(), "matmul", Params{"n": 32}, nil)
	if err != nil {
		t.Fatalf("Invoke on node-2: %v", err)
	}
	if !r2.Cold || !r2.CachedCold {
		t.Errorf("node-2 first boot: Cold=%v CachedCold=%v, want cached-cold via the seeded artifact", r2.Cold, r2.CachedCold)
	}
	st := p2.Stats()
	if st.ArtifactCache == nil || st.ArtifactCache.Seeded != 1 {
		t.Fatalf("node-2 cache stats = %+v, want 1 seeded artifact", st.ArtifactCache)
	}
	if ks := st.PerKernel["matmul"]; ks.CacheHits != 1 || ks.CacheMisses != 0 {
		t.Errorf("node-2 cache hits/misses = %d/%d, want 1/0", ks.CacheHits, ks.CacheMisses)
	}
}
