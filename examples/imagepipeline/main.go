// Imagepipeline runs the paper's motivating workflow (Fig. 1) on KaaS:
// image preprocessing on the host CPU, bitmap conversion on an FPGA, and
// ML inference on a GPU — three fine-grained tasks on three kinds of
// hardware, each served by a warm kernel runner.
//
//	go run ./examples/imagepipeline
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"kaas"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "imagepipeline:", err)
		os.Exit(1)
	}
}

func run() error {
	platform, err := kaas.New(
		kaas.WithAccelerators(kaas.NvidiaA100, kaas.AlveoU250),
	)
	if err != nil {
		return err
	}
	defer platform.Close()

	// The workflow's three kernels, each targeting its best hardware.
	stages := []struct {
		kernel string
		params kaas.Params
	}{
		{"preprocess", kaas.Params{"height": 256, "width": 256, "crop": 64}},
		{"bitmap", kaas.Params{"height": 64, "width": 64, "factor": 2}},
		{"resnet", kaas.Params{"batch": 1}},
	}
	for _, st := range stages {
		if err := platform.RegisterByName(st.kernel); err != nil {
			return err
		}
	}

	// Run the workflow several times: the first pass pays cold starts on
	// each device, later passes run entirely warm.
	for round := 1; round <= 3; round++ {
		var total time.Duration
		fmt.Printf("workflow round %d:\n", round)
		for _, st := range stages {
			resp, report, err := platform.Invoke(context.Background(), st.kernel, st.params, nil)
			if err != nil {
				return fmt.Errorf("stage %s: %w", st.kernel, err)
			}
			start := "warm"
			if report.Cold {
				start = "cold"
			}
			fmt.Printf("  %-10s %-4s on %-16s %8.3fs", st.kernel, start, report.Device,
				report.Total().Seconds())
			switch st.kernel {
			case "preprocess":
				fmt.Printf("  mean=%.3f", resp.Values["mean"])
			case "bitmap":
				fmt.Printf("  luma=%.3f", resp.Values["mean_luma"])
			case "resnet":
				fmt.Printf("  class=%d", int(resp.Values["first_class"]))
			}
			fmt.Println()
			total += report.Total()
		}
		fmt.Printf("  workflow total: %.3fs\n\n", total.Seconds())
	}
	return nil
}
