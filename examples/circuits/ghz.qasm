// Four-qubit GHZ state.
// Run with: go run ./cmd/kaasctl simulate examples/circuits/ghz.qasm
qreg q[4];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
cx q[2], q[3];
