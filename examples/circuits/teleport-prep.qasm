// Preparation half of quantum teleportation: an arbitrary payload state
// on q[0] plus an entangled resource pair on q[1], q[2], followed by the
// sender's Bell-basis rotation.
qreg q[3];
ry(0.7) q[0];
rz(pi/3) q[0];
h q[1];
cx q[1], q[2];
cx q[0], q[1];
h q[0];
