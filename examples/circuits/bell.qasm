// Bell pair: maximally entangled two-qubit state.
// Run with: go run ./cmd/kaasctl simulate examples/circuits/bell.qasm
qreg q[2];
h q[0];
cx q[0], q[1];
