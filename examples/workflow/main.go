// Workflow demonstrates composing heterogeneous kernels into a pipeline
// with the Workflow API (§3.4's usability story), and the kernel-fusion
// optimization (§6): two adjacent FPGA stages fused into one kernel so
// the intermediate payload never leaves the device.
//
//	go run ./examples/workflow
package main

import (
	"context"
	"fmt"
	"os"

	"kaas"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "workflow:", err)
		os.Exit(1)
	}
}

func run() error {
	platform, err := kaas.New(kaas.WithAccelerators(kaas.NvidiaA100, kaas.AlveoU250))
	if err != nil {
		return err
	}
	defer platform.Close()

	// --- Part 1: a three-stage heterogeneous workflow ------------------
	for _, name := range []string{"preprocess", "bitmap", "resnet"} {
		if err := platform.RegisterByName(name); err != nil {
			return err
		}
	}
	pipeline, err := platform.NewWorkflow(
		kaas.WorkflowStage{Kernel: "preprocess", Params: kaas.Params{"height": 128, "width": 128, "crop": 64}},
		kaas.WorkflowStage{Kernel: "bitmap", Params: kaas.Params{"height": 64, "width": 64, "factor": 2}},
		kaas.WorkflowStage{Kernel: "resnet", Params: kaas.Params{"batch": 1}},
	)
	if err != nil {
		return err
	}

	fmt.Println("heterogeneous workflow (CPU -> FPGA -> GPU):")
	for round := 1; round <= 2; round++ {
		res, err := pipeline.Run(context.Background(), nil)
		if err != nil {
			return err
		}
		fmt.Printf("  round %d: total %.3fs", round, res.Total.Seconds())
		for _, st := range res.Stages {
			mode := "warm"
			if st.Report.Cold {
				mode = "cold"
			}
			fmt.Printf("  [%s %s %.3fs]", st.Kernel, mode, st.Report.Total().Seconds())
		}
		fmt.Printf("  class=%d\n", int(res.Output().Values["first_class"]))
	}

	// --- Part 2: kernel fusion on the FPGA -----------------------------
	bitmap, err := kaas.KernelByName("bitmap")
	if err != nil {
		return err
	}
	histogram, err := kaas.KernelByName("histogram")
	if err != nil {
		return err
	}
	fusedKernel, err := kaas.Fuse("bitmap+histogram", bitmap, histogram)
	if err != nil {
		return err
	}
	if err := platform.Register(fusedKernel); err != nil {
		return err
	}

	params := kaas.Params{"height": 1080, "width": 1920, "n": 2097504}
	fmt.Println("\nfused FPGA pipeline (bitmap -> histogram, intermediate stays on device):")
	for round := 1; round <= 2; round++ {
		resp, report, err := platform.Invoke(context.Background(), "bitmap+histogram", params, nil)
		if err != nil {
			return err
		}
		mode := "warm"
		if report.Cold {
			mode = "cold"
		}
		fmt.Printf("  round %d: %s total %.3fs (copy-in %.3fs, exec %.3fs, copy-out %.3fs), histogram total %.0f\n",
			round, mode, report.Total().Seconds(),
			report.Breakdown.CopyIn.Seconds(),
			report.Breakdown.Exec.Seconds(),
			report.Breakdown.CopyOut.Seconds(),
			resp.Values["histogram.total"])
	}
	return nil
}
