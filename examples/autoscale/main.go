// Autoscale demonstrates KaaS elasticity (§5.5): a growing closed-loop
// client population issues matrix multiplications against an eight-GPU
// host, and the platform starts task runners on fresh GPUs as existing
// ones saturate their in-flight threshold.
//
//	go run ./examples/autoscale
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"kaas"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "autoscale:", err)
		os.Exit(1)
	}
}

func run() error {
	gpus := make([]kaas.DeviceProfile, 8)
	for i := range gpus {
		gpus[i] = kaas.TeslaV100
	}
	platform, err := kaas.New(
		kaas.WithAccelerators(gpus...),
		kaas.WithMaxInFlight(4),
		kaas.WithTimeScale(2000),
	)
	if err != nil {
		return err
	}
	defer platform.Close()
	if err := platform.RegisterByName("matmul"); err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	startClient := func(id int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				_, _, err := platform.Invoke(ctx, "matmul", kaas.Params{"n": 10000}, nil)
				if err != nil {
					return
				}
			}
		}()
	}

	// Ramp: add four clients every wall 50 ms (modeled 100 s per step is
	// compressed by the time scale), observing the runner pool.
	const steps = 6
	for step := 1; step <= steps; step++ {
		for i := 0; i < 4; i++ {
			startClient((step-1)*4 + i)
		}
		time.Sleep(50 * time.Millisecond)
		st := platform.Stats()
		fmt.Printf("clients=%2d  runners=%d  in-flight=%2d  runners-per-device=%v\n",
			step*4, st.Runners, st.InFlight, st.RunnersPerDevice)
	}
	cancel()
	wg.Wait()

	final := platform.Stats()
	fmt.Printf("\nfinal: %d runners across %d devices after %d cold starts\n",
		final.Runners, len(final.RunnersPerDevice), final.ColdStarts)
	return nil
}
