// Quickstart: stand up a KaaS platform with one simulated GPU, register
// the matrix-multiplication kernel, and watch a cold start turn into warm
// invocations.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"

	"kaas"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// One Tesla P100; modeled time runs 1000x wall time.
	platform, err := kaas.New(kaas.WithAccelerators(kaas.TeslaP100))
	if err != nil {
		return err
	}
	defer platform.Close()

	// Register the kernel once; this also warms the host framework, so
	// even the first runner start skips the library import.
	if err := platform.RegisterByName("matmul"); err != nil {
		return err
	}

	for i := 1; i <= 5; i++ {
		resp, report, err := platform.Invoke(context.Background(), "matmul",
			kaas.Params{"n": 500, "seed": float64(i)}, nil)
		if err != nil {
			return err
		}
		start := "warm"
		if report.Cold {
			start = "cold"
		}
		fmt.Printf("invocation %d: %-4s total=%8.3fs  (runtime init %.3fs, kernel %.3fs)  checksum=%.2f\n",
			i, start,
			report.Total().Seconds(),
			report.Breakdown.RuntimeInit.Seconds(),
			report.Breakdown.KernelTime().Seconds(),
			resp.Values["checksum"])
	}

	stats := platform.Stats()
	fmt.Printf("\nserver: %d kernel(s), %d runner(s), %d cold start(s)\n",
		stats.Kernels, stats.Runners, stats.ColdStarts)
	return nil
}
