// Remote demonstrates transparent remote invocation (§5.3): a client
// calls the genetic-algorithm kernel on a KaaS server over TCP, comparing
// in-band (serialized) and out-of-band (shared-memory) data transfer and
// a network-shaped "remote" path modeling the paper's 1 Gbps testbed.
//
//	go run ./examples/remote
package main

import (
	"fmt"
	"math/rand"
	"os"

	"kaas"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "remote:", err)
		os.Exit(1)
	}
}

func run() error {
	platform, err := kaas.New(
		kaas.WithAccelerators(kaas.TeslaP100),
		kaas.WithListenAddr("127.0.0.1:0"),
	)
	if err != nil {
		return err
	}
	defer platform.Close()
	if err := platform.RegisterByName("ga"); err != nil {
		return err
	}
	fmt.Printf("KaaS server on %s\n\n", platform.Addr())

	local, err := platform.NewClient()
	if err != nil {
		return err
	}
	defer local.Close()
	remote, err := platform.NewShapedClient()
	if err != nil {
		return err
	}
	defer remote.Close()

	// A 512-individual population, sent as the kernel payload.
	rng := rand.New(rand.NewSource(7))
	population := make([]float64, 512*100)
	for i := range population {
		population[i] = rng.Float64()*10 - 5
	}
	payload := kaas.Params{"n": 512, "generations": 10}
	data := kaas.EncodeFloat64s(population)

	// Warm the runner, then compare the three paths.
	if _, err := local.Invoke("ga", payload, data); err != nil {
		return err
	}

	for _, path := range []struct {
		name   string
		invoke func() (*kaas.ClientResult, error)
	}{
		{"local in-band ", func() (*kaas.ClientResult, error) { return local.Invoke("ga", payload, data) }},
		{"local oob     ", func() (*kaas.ClientResult, error) { return local.InvokeOutOfBand("ga", payload, data) }},
		{"remote (1Gbps)", func() (*kaas.ClientResult, error) { return remote.Invoke("ga", payload, data) }},
	} {
		res, err := path.invoke()
		if err != nil {
			return fmt.Errorf("%s: %w", path.name, err)
		}
		fmt.Printf("%s  server-time=%8.3fs  best-fitness=%.2f\n",
			path.name, res.ServerTime.Seconds(), res.Values["best_fitness"])
	}
	return nil
}
